package chaos

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
)

// memConn is a bidirectional in-memory transport recording what was
// actually delivered.
type memConn struct {
	mu     sync.Mutex
	buf    bytes.Buffer
	closed bool
}

func (m *memConn) Write(p []byte) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, io.ErrClosedPipe
	}
	return m.buf.Write(p)
}

func (m *memConn) Read(p []byte) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, io.ErrClosedPipe
	}
	return m.buf.Read(p)
}

func (m *memConn) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}

func (m *memConn) delivered() []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]byte(nil), m.buf.Bytes()...)
}

// writeOnly hides memConn's Read.
type writeOnly struct{ m *memConn }

func (w writeOnly) Write(p []byte) (int, error) { return w.m.Write(p) }
func (w writeOnly) Close() error                { return w.m.Close() }

func TestZeroConfigIsPassthrough(t *testing.T) {
	in := New(Config{Seed: 1})
	raw := &memConn{}
	c := in.Wrap(raw)
	for i := 0; i < 100; i++ {
		if n, err := c.Write([]byte{byte(i)}); n != 1 || err != nil {
			t.Fatalf("write %d: n=%d err=%v", i, n, err)
		}
	}
	got := raw.delivered()
	if len(got) != 100 {
		t.Fatalf("delivered %d bytes, want 100", len(got))
	}
	p := make([]byte, 4)
	if n, err := c.Read(p); n != 4 || err != nil {
		t.Fatalf("read: n=%d err=%v", n, err)
	}
	st := in.Stats()
	if st.Drops+st.Cuts+st.Dups+st.Delays+st.ReadCuts+st.DialFails != 0 {
		t.Fatalf("zero config injected faults: %+v", st)
	}
}

func TestDropReportsSuccessDeliversNothingAndKills(t *testing.T) {
	in := New(Config{Seed: 1, PDrop: 1})
	raw := &memConn{}
	c := in.Wrap(raw)
	n, err := c.Write([]byte("hello"))
	if n != 5 || err != nil {
		t.Fatalf("dropped write must report success: n=%d err=%v", n, err)
	}
	if got := raw.delivered(); len(got) != 0 {
		t.Fatalf("dropped write delivered %d bytes", len(got))
	}
	if !raw.closed {
		t.Fatal("drop must close the underlying transport")
	}
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write after death: %v", err)
	}
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("read after death: %v", err)
	}
	if st := in.Stats(); st.Drops != 1 {
		t.Fatalf("drops = %d, want 1", st.Drops)
	}
}

func TestCutDeliversPrefixAndErrors(t *testing.T) {
	in := New(Config{Seed: 1, PCut: 1})
	raw := &memConn{}
	c := in.Wrap(raw)
	payload := []byte("0123456789")
	if _, err := c.Write(payload); !errors.Is(err, ErrInjected) {
		t.Fatalf("cut write error: %v", err)
	}
	got := raw.delivered()
	if len(got) == 0 || len(got) >= len(payload) {
		t.Fatalf("cut delivered %d of %d bytes, want a proper prefix", len(got), len(payload))
	}
	if !bytes.Equal(got, payload[:len(got)]) {
		t.Fatal("cut delivered non-prefix bytes")
	}
	if !raw.closed {
		t.Fatal("cut must close the underlying transport")
	}
}

func TestDupDeliversTwice(t *testing.T) {
	in := New(Config{Seed: 1, PDup: 1})
	raw := &memConn{}
	c := in.Wrap(raw)
	if n, err := c.Write([]byte("ab")); n != 2 || err != nil {
		t.Fatalf("dup write: n=%d err=%v", n, err)
	}
	if got := raw.delivered(); !bytes.Equal(got, []byte("abab")) {
		t.Fatalf("dup delivered %q, want %q", got, "abab")
	}
}

func TestReadCutKillsConn(t *testing.T) {
	in := New(Config{Seed: 1, PReadCut: 1})
	raw := &memConn{}
	raw.buf.WriteString("pending")
	c := in.Wrap(raw)
	if _, err := c.Read(make([]byte, 4)); !errors.Is(err, ErrInjected) {
		t.Fatalf("read cut: %v", err)
	}
	if !raw.closed {
		t.Fatal("read cut must close the underlying transport")
	}
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write after read cut: %v", err)
	}
}

func TestDialPartition(t *testing.T) {
	in := New(Config{Seed: 1, PartitionEvery: 4, PartitionDials: 2})
	dial := in.Dial(func() (io.WriteCloser, error) { return &memConn{}, nil })
	var outcomes []bool
	for i := 0; i < 12; i++ {
		c, err := dial()
		ok := err == nil
		outcomes = append(outcomes, ok)
		if ok {
			c.Close()
		} else if !errors.Is(err, ErrInjected) {
			t.Fatalf("dial %d: %v", i, err)
		}
	}
	// Dials 4, 8, 12 (1-indexed) open partitions of 2 refused attempts.
	want := []bool{true, true, true, false, false, true, true, false, false, true, true, false}
	for i := range want {
		if outcomes[i] != want[i] {
			t.Fatalf("dial outcomes = %v, want %v", outcomes, want)
		}
	}
	if st := in.Stats(); st.Dials != 12 || st.DialFails != 5 {
		t.Fatalf("stats = %+v, want 12 dials / 5 fails", st)
	}
}

func TestDialPreservesReadCapability(t *testing.T) {
	in := New(Config{Seed: 1})
	bidi := in.Dial(func() (io.WriteCloser, error) { return &memConn{}, nil })
	c, err := bidi()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.(io.Reader); !ok {
		t.Fatal("bidirectional transport lost io.Reader through the wrapper")
	}
	wo := in.Dial(func() (io.WriteCloser, error) { return writeOnly{m: &memConn{}}, nil })
	c, err = wo()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.(io.Reader); ok {
		t.Fatal("write-only transport gained io.Reader through the wrapper")
	}
}

func TestSeedDeterminism(t *testing.T) {
	run := func() Stats {
		in := New(Config{Seed: 42, PDrop: 0.2, PCut: 0.2, PDup: 0.2, PReadCut: 0.3, PDialFail: 0.3})
		dial := in.Dial(func() (io.WriteCloser, error) { return &memConn{}, nil })
		for i := 0; i < 50; i++ {
			c, err := dial()
			if err != nil {
				continue
			}
			c.Write([]byte("frame"))
			if r, ok := c.(io.Reader); ok {
				r.Read(make([]byte, 1))
			}
			c.Close()
		}
		return in.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different fault sequence:\n%+v\n%+v", a, b)
	}
	if a.Drops == 0 || a.Cuts == 0 || a.DialFails == 0 {
		t.Fatalf("expected a mix of faults, got %+v", a)
	}
}
