// Package chaos injects seeded transport faults into the networked
// deployment, so the resilient wire path's delivery guarantees can be
// exercised — and regression-tested — without real network failures. An
// Injector wraps connections and dial functions with a single seeded
// fault stream that can:
//
//   - drop a write: the bytes are accepted (the caller sees success) but
//     never delivered, and the connection dies — the exact
//     "accepted-but-undelivered frame" failure that loses a delta on an
//     unacknowledged sender;
//   - cut a write mid-frame: a prefix is delivered, then the connection
//     dies, leaving the peer's decoder on a corrupt stream;
//   - duplicate a write: the same bytes are delivered twice, exercising
//     receiver-side dedup;
//   - delay a write;
//   - cut a read: the connection dies while the caller waits for bytes
//     (for the wire protocol: an ack is lost after the frame was applied,
//     forcing a replay the coordinator must dedup);
//   - fail dials, either independently (PDialFail) or as deterministic
//     partitions (every PartitionEvery-th dial starts a window of
//     PartitionDials refused attempts).
//
// Faults that kill a connection also close the underlying transport, so
// goroutines blocked on the other direction unblock promptly — a dead
// connection must look dead from both ends, as it does on a real network.
//
// All randomness flows from Config.Seed through one guarded rng, matching
// the repository's reproducibility convention. Decisions are consumed in
// call order; runs whose goroutines interleave I/O identically draw
// identical fault sequences. Delivery guarantees under test must hold for
// every interleaving anyway, so the seed pins the fault mix rather than
// the exact schedule.
package chaos

import (
	"errors"
	"io"
	"math/rand"
	"sync"
	"time"
)

// ErrInjected is the error returned by operations on a connection a fault
// has killed, and by refused dials. Match with errors.Is.
var ErrInjected = errors.New("chaos: injected fault")

// Config parameterizes an Injector. All probabilities are per-operation
// in [0, 1]; the zero value injects nothing (a transparent wrapper).
type Config struct {
	// Seed seeds the fault stream.
	Seed int64
	// PDrop is the probability a write is silently discarded and the
	// connection killed (accepted-but-undelivered loss).
	PDrop float64
	// PCut is the probability a write delivers only a prefix before the
	// connection is killed (mid-frame cut).
	PCut float64
	// PDup is the probability a write is delivered twice.
	PDup float64
	// PDelay is the probability a write sleeps up to MaxDelay first.
	PDelay float64
	// MaxDelay bounds injected write delays (default 1ms when PDelay > 0).
	MaxDelay time.Duration
	// PReadCut is the probability a read kills the connection instead of
	// delivering bytes.
	PReadCut float64
	// PDialFail is the probability a dial attempt is refused.
	PDialFail float64
	// PartitionEvery > 0 starts a partition on every PartitionEvery-th
	// dial attempt: the next PartitionDials attempts are refused.
	PartitionEvery int
	// PartitionDials is the length of each partition in refused dial
	// attempts (default 3 when PartitionEvery > 0).
	PartitionDials int
}

// Stats counts operations and injected faults.
type Stats struct {
	// Writes and Reads count operations that reached the wrapper.
	Writes, Reads int64
	// Drops, Cuts, Dups and Delays count injected write faults; ReadCuts
	// injected read faults.
	Drops, Cuts, Dups, Delays, ReadCuts int64
	// Dials counts dial attempts through wrapped dialers, DialFails the
	// refused ones (independent failures and partition windows together).
	Dials, DialFails int64
}

// Injector owns the seeded fault stream. Safe for concurrent use; one
// injector is typically shared by every connection of a run.
type Injector struct {
	cfg Config

	mu            sync.Mutex
	rng           *rand.Rand
	stats         Stats
	partitionLeft int
}

// New returns an injector for cfg.
func New(cfg Config) *Injector {
	if cfg.PDelay > 0 && cfg.MaxDelay <= 0 {
		cfg.MaxDelay = time.Millisecond
	}
	if cfg.PartitionEvery > 0 && cfg.PartitionDials <= 0 {
		cfg.PartitionDials = 3
	}
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Stats snapshots the fault counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// roll consumes one decision from the fault stream.
func (in *Injector) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	return in.rng.Float64() < p
}

// writeFault is the per-write decision.
type writeFault uint8

const (
	writeOK writeFault = iota
	writeDrop
	writeCut
	writeDup
)

// decideWrite draws the delay and fault decisions for one write in a
// fixed order, so the consumed stream length per write is deterministic.
func (in *Injector) decideWrite() (delay time.Duration, f writeFault) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.Writes++
	if in.roll(in.cfg.PDelay) {
		delay = time.Duration(in.rng.Int63n(int64(in.cfg.MaxDelay) + 1))
		in.stats.Delays++
	}
	switch {
	case in.roll(in.cfg.PDrop):
		in.stats.Drops++
		f = writeDrop
	case in.roll(in.cfg.PCut):
		in.stats.Cuts++
		f = writeCut
	case in.roll(in.cfg.PDup):
		in.stats.Dups++
		f = writeDup
	}
	return delay, f
}

func (in *Injector) decideRead() (cut bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.Reads++
	if in.roll(in.cfg.PReadCut) {
		in.stats.ReadCuts++
		return true
	}
	return false
}

func (in *Injector) decideDial() (refuse bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.Dials++
	if in.partitionLeft > 0 {
		in.partitionLeft--
		in.stats.DialFails++
		return true
	}
	if in.cfg.PartitionEvery > 0 && in.stats.Dials%int64(in.cfg.PartitionEvery) == 0 {
		in.partitionLeft = in.cfg.PartitionDials - 1
		in.stats.DialFails++
		return true
	}
	if in.roll(in.cfg.PDialFail) {
		in.stats.DialFails++
		return true
	}
	return false
}

// conn is the shared fault-injecting wrapper state.
type conn struct {
	in *Injector
	w  io.WriteCloser
	r  io.Reader // nil on write-only transports

	mu   sync.Mutex
	dead bool
}

// kill marks the connection dead and closes the underlying transport so
// both directions fail promptly.
func (c *conn) kill() {
	c.mu.Lock()
	already := c.dead
	c.dead = true
	c.mu.Unlock()
	if !already {
		c.w.Close()
	}
}

func (c *conn) isDead() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead
}

func (c *conn) Write(p []byte) (int, error) {
	if c.isDead() {
		return 0, ErrInjected
	}
	delay, f := c.in.decideWrite()
	if delay > 0 {
		time.Sleep(delay)
	}
	switch f {
	case writeDrop:
		// Report success, deliver nothing, die: the caller believes the
		// frame left, but no receiver will ever see it.
		c.kill()
		return len(p), nil
	case writeCut:
		if len(p) > 1 {
			c.w.Write(p[:len(p)/2])
		}
		c.kill()
		return 0, ErrInjected
	case writeDup:
		if n, err := c.w.Write(p); err != nil {
			return n, err
		}
		return c.w.Write(p)
	}
	return c.w.Write(p)
}

func (c *conn) Close() error {
	c.mu.Lock()
	already := c.dead
	c.dead = true
	c.mu.Unlock()
	if already {
		return nil
	}
	return c.w.Close()
}

// Conn is a fault-injected bidirectional connection.
type Conn struct{ conn }

// Read delivers from the underlying transport unless a read-cut fault
// kills the connection first. Only Conn has it: WConn must not advertise
// io.Reader on behalf of a write-only transport.
func (c *Conn) Read(p []byte) (int, error) {
	if c.isDead() {
		return 0, ErrInjected
	}
	if c.in.decideRead() {
		c.kill()
		return 0, ErrInjected
	}
	return c.r.Read(p)
}

// WConn is a fault-injected write-only connection. It deliberately does
// NOT implement io.Reader, so capability probes (the resilient sender's
// ack-mode detection) see the wrapped transport's true shape.
type WConn struct{ conn }

// Wrap returns a fault-injected wrapper around rwc drawing from the
// injector's fault stream.
func (in *Injector) Wrap(rwc io.ReadWriteCloser) *Conn {
	return &Conn{conn{in: in, w: rwc, r: rwc}}
}

// WrapWriter wraps a write-only transport (read faults never fire).
func (in *Injector) WrapWriter(wc io.WriteCloser) *WConn {
	return &WConn{conn{in: in, w: wc}}
}

// Dial wraps a dial function: attempts may be refused (independent
// failures and partitions), and successful dials return fault-injected
// connections preserving the underlying transport's read capability.
func (in *Injector) Dial(dial func() (io.WriteCloser, error)) func() (io.WriteCloser, error) {
	return func() (io.WriteCloser, error) {
		if in.decideDial() {
			return nil, ErrInjected
		}
		raw, err := dial()
		if err != nil {
			return nil, err
		}
		if rwc, ok := raw.(io.ReadWriteCloser); ok {
			return in.Wrap(rwc), nil
		}
		return in.WrapWriter(raw), nil
	}
}
