package meh

import (
	"math/rand"
	"testing"
)

func benchRows(n, d int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		v := make([]float64, d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		rows[i] = v
	}
	return rows
}

func BenchmarkAddD64(b *testing.B) {
	rows := benchRows(4096, 64, 1)
	h := New(1_000_000, 64, 0.1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Add(int64(i), rows[i%len(rows)])
	}
}

func BenchmarkAddD512(b *testing.B) {
	rows := benchRows(1024, 512, 2)
	h := New(1_000_000, 512, 0.1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Add(int64(i), rows[i%len(rows)])
	}
}

func BenchmarkApplyGram(b *testing.B) {
	rows := benchRows(8192, 128, 3)
	h := New(1_000_000, 128, 0.1)
	for i, r := range rows {
		h.Add(int64(i), r)
	}
	x := make([]float64, 128)
	y := make([]float64, 128)
	for i := range x {
		x[i] = 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ApplyGram(x, y)
	}
}

func BenchmarkFrobSqEstimate(b *testing.B) {
	rows := benchRows(8192, 32, 4)
	h := New(1_000_000, 32, 0.05)
	for i, r := range rows {
		h.Add(int64(i), r)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.FrobSqEstimate()
	}
}
