package meh

import (
	"math/rand"
	"testing"

	"distwindow/internal/fd"
)

func TestPoolRowsRoundTrip(t *testing.T) {
	p := NewPool()
	if r := p.GetRow(4); r != nil {
		t.Fatalf("empty pool GetRow = %v", r)
	}
	p.PutRow([]float64{1, 2, 3, 4})
	p.PutRow([]float64{5, 6})
	r4 := p.GetRow(4)
	if len(r4) != 4 {
		t.Fatalf("GetRow(4) length = %d", len(r4))
	}
	if r := p.GetRow(4); r != nil {
		t.Fatal("second GetRow(4) should miss")
	}
	if r := p.GetRow(2); len(r) != 2 {
		t.Fatalf("GetRow(2) length = %d", len(r))
	}
	rows, sks := p.Idle()
	if rows != 0 || sks != 0 {
		t.Fatalf("Idle = (%d, %d) after draining", rows, sks)
	}
}

func TestPoolSketchShapeMatching(t *testing.T) {
	p := NewPool()
	sk := fd.New(8, 4)
	sk.Update([]float64{1, 2, 3, 4})
	p.PutSketch(sk)
	if got := p.GetSketch(8, 2); got != nil {
		t.Fatal("GetSketch returned a wrong-dimension sketch")
	}
	if got := p.GetSketch(4, 4); got != nil {
		t.Fatal("GetSketch returned a wrong-ell sketch")
	}
	got := p.GetSketch(8, 4)
	if got != sk {
		t.Fatal("GetSketch(8,4) did not return the donated sketch")
	}
	// PutSketch resets, so the recycled sketch must look fresh.
	if got.RowsView().Rows() != 0 {
		t.Fatalf("recycled sketch has %d rows, want 0", got.RowsView().Rows())
	}
}

func TestPoolNilSafe(t *testing.T) {
	var p *Pool
	if r := p.GetRow(3); r != nil {
		t.Fatal("nil pool GetRow != nil")
	}
	p.PutRow([]float64{1})
	if sk := p.GetSketch(4, 2); sk != nil {
		t.Fatal("nil pool GetSketch != nil")
	}
	p.PutSketch(nil)
	if r, s := p.Idle(); r != 0 || s != 0 {
		t.Fatalf("nil pool Idle = (%d, %d)", r, s)
	}
}

// TestHistogramReleaseDonates drives a histogram past its window, releases
// it, and verifies its storage landed in the shared pool — then that a
// second histogram warm-starts from those donations and still produces
// the exact same sketch as one allocating fresh.
func TestHistogramReleaseDonates(t *testing.T) {
	const (
		d   = 4
		w   = int64(64)
		eps = 0.3
	)
	p := NewPool()
	feed := func(h *Histogram) {
		rng := rand.New(rand.NewSource(42))
		v := make([]float64, d)
		for i := int64(0); i < 3*w; i++ {
			for j := range v {
				v[j] = rng.NormFloat64()
			}
			h.Add(i, v)
		}
	}
	h1 := New(w, d, eps)
	h1.SetShared(p)
	feed(h1)
	h1.Release()
	rows, _ := p.Idle()
	if rows == 0 {
		t.Fatal("Release donated no rows")
	}

	h2 := New(w, d, eps)
	h2.SetShared(p)
	feed(h2)
	rows2, _ := p.Idle()
	if rows2 >= rows {
		t.Fatalf("pooled rows %d → %d: second histogram did not reuse donations", rows, rows2)
	}
	// Determinism across reuse: a pool-fed histogram must match a fresh one.
	plain := New(w, d, eps)
	feed(plain)
	if !h2.SketchRows().Equal(plain.SketchRows()) {
		t.Fatal("pooled histogram sketch differs from fresh histogram sketch")
	}
}
