package meh

import (
	"math"
	"math/rand"
	"testing"

	"distwindow/internal/stream"
	"distwindow/internal/window"
	"distwindow/mat"
)

func TestEmpty(t *testing.T) {
	h := New(100, 3, 0.1)
	if h.FrobSqEstimate() != 0 {
		t.Fatal("empty mEH should estimate 0 mass")
	}
	if h.SketchRows().Rows() != 0 {
		t.Fatal("empty mEH should have no sketch rows")
	}
	if mat.FrobSq(h.Gram()) != 0 {
		t.Fatal("empty mEH Gram should be zero")
	}
}

func TestSingleRowExact(t *testing.T) {
	h := New(100, 2, 0.1)
	h.Add(1, []float64{3, 4})
	if math.Abs(h.FrobSqEstimate()-25) > 1e-12 {
		t.Fatalf("FrobSqEstimate = %v, want 25", h.FrobSqEstimate())
	}
	g := h.Gram()
	if math.Abs(g.At(0, 0)-9) > 1e-9 || math.Abs(g.At(0, 1)-12) > 1e-9 {
		t.Fatalf("Gram wrong: %v", g)
	}
}

func TestZeroRowIgnored(t *testing.T) {
	h := New(100, 2, 0.1)
	h.Add(1, []float64{0, 0})
	if h.Buckets() != 0 {
		t.Fatal("zero row should not create a bucket")
	}
}

func TestFullExpiry(t *testing.T) {
	h := New(10, 2, 0.1)
	h.Add(1, []float64{1, 0})
	h.Add(2, []float64{0, 1})
	h.Advance(100)
	if h.Buckets() != 0 || h.FrobSqEstimate() != 0 {
		t.Fatal("everything should expire")
	}
}

func TestCovarianceErrorGuarantee(t *testing.T) {
	// The mEH sketch must stay within O(eps) covariance error of the true
	// window matrix as the window slides.
	const (
		d   = 8
		eps = 0.1
		w   = int64(500)
	)
	h := New(w, d, eps)
	truth := window.NewExact(w)
	rng := rand.New(rand.NewSource(1))
	for i := int64(1); i <= 3000; i++ {
		v := make([]float64, d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		h.Add(i, v)
		truth.Add(stream.Row{T: i, V: v})
		if i%250 == 0 && truth.FrobSq() > 0 {
			err := truth.CovErr(d, h.SketchRows())
			// Constant factors: per-bucket FD error + straddling bucket.
			if err > 4*eps {
				t.Fatalf("t=%d: covariance error %v > %v", i, err, 4*eps)
			}
		}
	}
}

func TestFrobSqEstimateRelativeError(t *testing.T) {
	const eps = 0.1
	w := int64(400)
	h := New(w, 4, eps)
	truth := window.NewExact(w)
	rng := rand.New(rand.NewSource(2))
	for i := int64(1); i <= 2000; i++ {
		v := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		h.Add(i, v)
		truth.Add(stream.Row{T: i, V: v})
		if i%200 == 0 {
			got := h.FrobSqEstimate()
			want := truth.FrobSq()
			if math.Abs(got-want)/want > 2*eps {
				t.Fatalf("t=%d: F̂² = %v vs truth %v", i, got, want)
			}
		}
	}
}

func TestSkewedNorms(t *testing.T) {
	// Large R: occasional huge rows among tiny ones.
	const eps = 0.1
	w := int64(300)
	h := New(w, 3, eps)
	truth := window.NewExact(w)
	rng := rand.New(rand.NewSource(3))
	for i := int64(1); i <= 1500; i++ {
		scale := 0.1
		if rng.Intn(50) == 0 {
			scale = 30 // R ≈ 90000 in squared norm
		}
		v := []float64{scale * rng.NormFloat64(), scale * rng.NormFloat64(), scale * rng.NormFloat64()}
		if mat.VecNormSq(v) == 0 {
			continue
		}
		h.Add(i, v)
		truth.Add(stream.Row{T: i, V: v})
	}
	if truth.FrobSq() == 0 {
		t.Skip("degenerate draw")
	}
	err := truth.CovErr(3, h.SketchRows())
	if err > 6*eps {
		t.Fatalf("skewed covariance error %v > %v", err, 6*eps)
	}
}

func TestSpaceSublinear(t *testing.T) {
	h := New(1_000_000, 5, 0.2)
	for i := int64(1); i <= 20000; i++ {
		h.Add(i, []float64{1, 0, 0, 0, 0})
	}
	// Raw storage would be 20000 rows (100000 words); mEH must be far below.
	if h.SketchRows().Rows() > 4000 {
		t.Fatalf("sketch rows = %d, want sublinear", h.SketchRows().Rows())
	}
	if h.SpaceWords() > 30000 {
		t.Fatalf("space = %d words, want sublinear", h.SpaceWords())
	}
}

func TestRowsInReverseOrder(t *testing.T) {
	h := New(1000, 2, 0.5)
	h.Add(1, []float64{1, 0})
	h.Add(2, []float64{0, 1})
	h.Add(3, []float64{1, 1})
	var ts []int64
	h.RowsInReverse(func(tt int64, v []float64) { ts = append(ts, tt) })
	if len(ts) == 0 {
		t.Fatal("no rows replayed")
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] > ts[i-1] {
			t.Fatalf("timestamps not non-increasing: %v", ts)
		}
	}
}

func TestGramMatchesSketchRows(t *testing.T) {
	h := New(1000, 3, 0.2)
	rng := rand.New(rand.NewSource(4))
	for i := int64(1); i <= 200; i++ {
		h.Add(i, []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()})
	}
	if !h.Gram().EqualApprox(mat.Gram(h.SketchRows()), 1e-9) {
		t.Fatal("Gram should equal Gram(SketchRows)")
	}
}

func TestNewValidation(t *testing.T) {
	cases := []func(){
		func() { New(0, 3, 0.1) },
		func() { New(10, 0, 0.1) },
		func() { New(10, 3, 0) },
		func() { New(10, 3, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}
