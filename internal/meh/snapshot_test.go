package meh

import (
	"math/rand"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := New(1000, 4, 0.2)
	for i := int64(1); i <= 800; i++ {
		h.Add(i, []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()})
	}
	r, err := Restore(h.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !r.SketchRows().Equal(h.SketchRows()) {
		t.Fatal("restored sketch rows differ")
	}
	if r.FrobSqEstimate() != h.FrobSqEstimate() || r.Buckets() != h.Buckets() {
		t.Fatal("restored estimates differ")
	}
	for i := int64(801); i <= 1100; i++ {
		v := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		h.Add(i, v)
		r.Add(i, v)
	}
	if !r.SketchRows().Equal(h.SketchRows()) {
		t.Fatal("restored histogram diverged after more rows")
	}
}

func TestSnapshotRestoreRejectsCorrupt(t *testing.T) {
	cases := []Snapshot{
		{W: 0, D: 3, Eps2: 0.1, Ell: 5},
		{W: 10, D: 0, Eps2: 0.1, Ell: 5},
		{W: 10, D: 3, Eps2: 0.1, Ell: 0},
		{W: 10, D: 3, Eps2: 0.1, Ell: 5, Buckets: []BucketSnapshot{{FrobSq: 1}}},                    // empty bucket
		{W: 10, D: 3, Eps2: 0.1, Ell: 5, Buckets: []BucketSnapshot{{Row: []float64{1}, FrobSq: 1}}}, // wrong row len
	}
	for i, c := range cases {
		if _, err := Restore(c); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}
