// Package meh implements a matrix exponential histogram (mEH) after Wei et
// al. (SIGMOD 2016): a per-site structure that maintains, over a
// time-based sliding window, (1) an O(ε)-covariance sketch of the window
// matrix and (2) an ε-relative estimate of its squared Frobenius norm, in
// O(d/ε² · log(NR)) words.
//
// The structure is an exponential histogram whose buckets carry Frequent
// Directions sketches instead of scalar sums. Buckets merge under the same
// suffix rule as the scalar gEH (package eh): two adjacent buckets merge
// only when their combined Frobenius mass is at most (ε/2)× the mass of
// all strictly newer buckets — an invariant that holds for the merged
// bucket's whole lifetime because newer mass only grows while it lives.
// Merging FD sketches adds their error bounds, but also their masses, so
// each bucket's sketch stays within F_b²/ℓ covariance error. At query time
// only the oldest bucket can straddle the window boundary; including it
// wholesale adds at most its mass ≤ (ε/2)‖A_w‖_F² of covariance error,
// giving O(ε)‖A_w‖_F² total.
//
// The histogram recycles its transient storage: single-row buffers and FD
// sketches released by bucket merges and expiries go to small freelists,
// and the compaction pass double-buffers its bucket slice, so at steady
// state Add performs no heap allocations.
package meh

import (
	"math"

	"distwindow/internal/fd"
	"distwindow/internal/obs"
	"distwindow/internal/trace"
	"distwindow/mat"
)

// Histogram is an mEH. Add must be called with non-decreasing timestamps.
// Construct with New.
type Histogram struct {
	w       int64
	d       int
	eps2    float64 // ε/2 merge threshold factor
	ell     int     // FD sketch size per bucket
	buckets []bucket
	pending int

	// scratch is compact's output double-buffer: compact builds the merged
	// bucket list here, then swaps it with buckets, so neither slice is
	// reallocated at steady state.
	scratch []bucket
	// freeSk and freeRow recycle bucket sketches and single-row buffers
	// released by merges and expiries, bounded by maxFree each.
	freeSk  []*fd.Sketch
	freeRow [][]float64
	// slab is the backing store fresh row buffers are carved from when
	// both the freelist and the shared pool miss. A cold histogram's
	// warm-up (nothing released yet, shared pool only fed by evictions)
	// would otherwise pay one allocation per Add; the slab amortizes that
	// to one per slabRows rows, growing geometrically to maxSlabRows.
	slab     []float64
	slabRows int
	// shared is an optional cross-histogram pool behind the freelists:
	// consulted on a freelist miss, donated to by Release. Nil (the
	// default) keeps the histogram fully self-contained.
	shared *Pool

	// sink receives bucket lifecycle events (created/merged/expired); nil
	// — the default — costs one branch per structural change. site tags
	// the events with the owning site's index.
	sink obs.Sink
	site int
	// tracer records bucket lifecycle instants under the caller's open
	// ingest span; nil — the default — costs one nil-check per event.
	tracer *trace.Tracer
}

// Invariant: a live bucket holds exactly one of row (a single lazy row) or
// sk (a materialized FD sketch).
type bucket struct {
	sk     *fd.Sketch
	row    []float64 // set while the bucket holds exactly one row (lazy sketch)
	frobSq float64
	newest int64
	oldest int64
}

// compactEvery bounds the raw buckets accumulated between compaction
// passes, keeping amortized cost constant.
const compactEvery = 32

// maxFreeRows and maxFreeSketches cap the freelists; beyond them released
// buffers go to the GC. A compaction pass can release up to one single-row
// buffer per Add since the previous pass (compactEvery of them) in one
// burst, which the following Adds then reclaim one by one — so the row cap
// must cover a full inter-compaction cycle for Add to stay allocation-free.
// Sketch churn per pass is a handful, so a small cap suffices.
const (
	maxFreeRows     = compactEvery + 8
	maxFreeSketches = 16
)

// New returns an mEH for d-dimensional rows over a window of w ticks with
// error parameter eps in (0, 1). Per-bucket FD size is ⌈1/eps⌉ so the
// summed FD error across buckets is at most eps·‖A_w‖_F².
func New(w int64, d int, eps float64) *Histogram {
	if w <= 0 {
		panic("meh: window must be positive")
	}
	if eps <= 0 || eps >= 1 {
		panic("meh: eps must be in (0,1)")
	}
	if d < 1 {
		panic("meh: d must be positive")
	}
	return &Histogram{w: w, d: d, eps2: eps / 2, ell: int(math.Ceil(1 / eps)), site: -1}
}

// SetSink installs an event sink for bucket lifecycle events, tagging them
// with the given site index (-1 for "no site"). A nil sink disables
// events. Install before feeding data; the field is not synchronized.
func (h *Histogram) SetSink(s obs.Sink, site int) {
	h.sink = s
	h.site = site
}

// SetTracer installs a causal tracer for bucket lifecycle instants
// (created/merged/expired), tagged with the given site index. The events
// attach under whatever span the tracer currently has open — the ingest
// root — and are dropped when none is. Install before feeding data; nil
// disables.
func (h *Histogram) SetTracer(tr *trace.Tracer, site int) {
	h.tracer = tr
	h.site = site
}

// SetShared installs a cross-histogram storage pool consulted when the
// private freelists miss (nil uninstalls). Install before feeding data;
// the field is read without synchronization. The per-row fast path is
// unchanged: the shared pool is only touched on misses and by Release.
func (h *Histogram) SetShared(p *Pool) { h.shared = p }

// Release donates the histogram's entire storage — live bucket rows and
// sketches plus both freelists — to the shared pool installed with
// SetShared (without one, the storage simply goes to the GC). The
// histogram must not be used afterwards. Multi-tenant registries call it
// when a stream is evicted so the next stream opened at the same shape
// starts warm.
func (h *Histogram) Release() {
	for i := range h.buckets {
		b := &h.buckets[i]
		h.shared.PutRow(b.row)
		h.shared.PutSketch(b.sk)
		*b = bucket{}
	}
	for _, r := range h.freeRow {
		h.shared.PutRow(r)
	}
	for _, sk := range h.freeSk {
		h.shared.PutSketch(sk)
	}
	h.buckets, h.scratch, h.freeRow, h.freeSk = nil, nil, nil, nil
	h.slab, h.slabRows = nil, 0
	h.pending = 0
}

// D returns the row dimension.
func (h *Histogram) D() int { return h.d }

// getRow returns a copy of v in a (possibly recycled) buffer.
func (h *Histogram) getRow(v []float64) []float64 {
	if n := len(h.freeRow); n > 0 {
		r := h.freeRow[n-1]
		h.freeRow = h.freeRow[:n-1]
		copy(r, v)
		return r
	}
	if r := h.shared.GetRow(len(v)); r != nil {
		copy(r, v)
		return r
	}
	if len(h.slab) < len(v) {
		switch {
		case h.slabRows == 0:
			h.slabRows = minSlabRows
		case h.slabRows < maxSlabRows:
			h.slabRows *= 2
		}
		h.slab = make([]float64, h.slabRows*len(v))
	}
	r := h.slab[:len(v):len(v)]
	h.slab = h.slab[len(v):]
	copy(r, v)
	return r
}

// minSlabRows and maxSlabRows bound the row-slab growth: small first slab
// so a near-empty stream wastes little, doubling to a cap that keeps the
// steady warm-up cost below one allocation per 64 rows.
const (
	minSlabRows = 8
	maxSlabRows = 64
)

// putRow recycles a released single-row buffer.
func (h *Histogram) putRow(r []float64) {
	if r != nil && len(h.freeRow) < maxFreeRows {
		h.freeRow = append(h.freeRow, r)
	}
}

// getSketch returns an empty sketch, recycled when possible.
func (h *Histogram) getSketch() *fd.Sketch {
	if n := len(h.freeSk); n > 0 {
		sk := h.freeSk[n-1]
		h.freeSk = h.freeSk[:n-1]
		return sk
	}
	if sk := h.shared.GetSketch(h.ell, h.d); sk != nil {
		return sk
	}
	return fd.New(h.ell, h.d)
}

// putSketch recycles a released bucket sketch.
func (h *Histogram) putSketch(sk *fd.Sketch) {
	if sk != nil && len(h.freeSk) < maxFreeSketches {
		sk.Reset()
		h.freeSk = append(h.freeSk, sk)
	}
}

// Add inserts a row with timestamp t and expires out-of-window buckets.
// Zero rows are ignored (they carry no covariance mass).
func (h *Histogram) Add(t int64, v []float64) {
	w := mat.VecNormSq(v)
	if w == 0 {
		h.Advance(t)
		return
	}
	h.buckets = append(h.buckets, bucket{row: h.getRow(v), frobSq: w, newest: t, oldest: t})
	h.pending++
	if h.sink != nil {
		h.sink.OnEvent(obs.Event{Kind: obs.EvBucketCreated, Site: h.site, T: t})
	}
	h.tracer.Instant(trace.OpBucketCreate, h.site, t, 1)
	if h.pending >= compactEvery {
		h.compact()
	}
	h.Advance(t)
}

// sketch materializes b's FD sketch, absorbing (and recycling) a lazy
// single row.
func (h *Histogram) sketch(b *bucket) *fd.Sketch {
	if b.sk == nil {
		b.sk = h.getSketch()
	}
	if b.row != nil {
		b.sk.Update(b.row)
		h.putRow(b.row)
		b.row = nil
	}
	return b.sk
}

// single reports whether the bucket still holds exactly one row.
func (b *bucket) single() bool { return b.row != nil && b.sk == nil }

func (h *Histogram) compact() {
	h.pending = 0
	n := len(h.buckets)
	if n < 2 {
		return
	}
	out := h.scratch[:0]
	suffix := 0.0
	cur := h.buckets[n-1]
	for i := n - 2; i >= 0; i-- {
		b := h.buckets[i]
		if cur.frobSq+b.frobSq <= h.eps2*suffix {
			// Merge older bucket b into cur, recycling b's storage.
			cs := h.sketch(&cur)
			if b.single() {
				cs.Update(b.row)
				h.putRow(b.row)
			} else {
				b.sk.MergeInto(cs)
				h.putSketch(b.sk)
			}
			cur.frobSq += b.frobSq
			cur.oldest = b.oldest
			continue
		}
		out = append(out, cur)
		suffix += cur.frobSq
		cur = b
	}
	out = append(out, cur)
	for l, r := 0, len(out)-1; l < r; l, r = l+1, r-1 {
		out[l], out[r] = out[r], out[l]
	}
	if merged := n - len(out); merged > 0 {
		if h.sink != nil {
			h.sink.OnEvent(obs.Event{Kind: obs.EvBucketMerged, Site: h.site, N: merged})
		}
		h.tracer.Instant(trace.OpBucketMerge, h.site, 0, int64(merged))
	}
	// Swap the double buffers: the old bucket array becomes next pass's
	// scratch. Its entries were copied by value into out or merged away,
	// so truncating to zero length drops every stale pointer reference on
	// the next append pass.
	h.scratch = h.buckets[:0]
	h.buckets = out
}

// Advance expires buckets whose newest row timestamp is ≤ now−w.
func (h *Histogram) Advance(now int64) {
	cut := now - h.w
	i := 0
	for i < len(h.buckets) && h.buckets[i].newest <= cut {
		// Recycle the expired bucket's storage.
		h.putRow(h.buckets[i].row)
		h.putSketch(h.buckets[i].sk)
		i++
	}
	if i > 0 {
		// Copy the survivors down so the slice keeps its backing array
		// (re-slicing forward would leak capacity and force reallocation
		// on future appends), and clear the vacated tail so recycled
		// buffers are not referenced twice.
		n := copy(h.buckets, h.buckets[i:])
		tail := h.buckets[n:]
		for j := range tail {
			tail[j] = bucket{}
		}
		h.buckets = h.buckets[:n]
		if h.sink != nil {
			h.sink.OnEvent(obs.Event{Kind: obs.EvBucketExpired, Site: h.site, T: now, N: i})
		}
		h.tracer.Instant(trace.OpBucketExpire, h.site, now, int64(i))
	}
}

// FrobSqEstimate returns the gEH-style estimate of ‖A_w‖_F²: full mass of
// all buckets except a straddling (multi-row) oldest bucket, which
// contributes half.
func (h *Histogram) FrobSqEstimate() float64 {
	if len(h.buckets) == 0 {
		return 0
	}
	var s float64
	for i := 1; i < len(h.buckets); i++ {
		s += h.buckets[i].frobSq
	}
	ob := &h.buckets[0]
	if ob.single() || ob.oldest == ob.newest {
		s += ob.frobSq
	} else {
		s += ob.frobSq / 2
	}
	return s
}

// SketchRows returns the stacked rows of all bucket sketches — a matrix B
// with ‖A_wᵀA_w − BᵀB‖₂ = O(ε)·‖A_w‖_F². The rows are copied into the
// result in one pass without intermediate per-bucket copies.
func (h *Histogram) SketchRows() *mat.Dense {
	total := 0
	for i := range h.buckets {
		b := &h.buckets[i]
		if b.single() {
			total++
		} else {
			total += b.sk.NumRows()
		}
	}
	out := mat.NewDense(total, h.d)
	at := 0
	for i := range h.buckets {
		b := &h.buckets[i]
		if b.single() {
			out.SetRow(at, b.row)
			at++
		} else {
			at += b.sk.AppendRowsTo(out, at)
		}
	}
	return out
}

// ApplyGram computes y = BᵀB·x over the stacked bucket sketches without
// materializing them; x and y must have length D.
func (h *Histogram) ApplyGram(x, y []float64) {
	for i := range y {
		y[i] = 0
	}
	for i := range h.buckets {
		b := &h.buckets[i]
		if b.single() {
			c := mat.Dot(b.row, x)
			if c != 0 {
				mat.Axpy(c, b.row, y)
			}
		} else {
			b.sk.ApplyGramAdd(x, y)
		}
	}
}

// Gram returns BᵀB of the stacked sketch — an O(ε)-covariance
// approximation of A_wᵀA_w — computed fresh on each call.
func (h *Histogram) Gram() *mat.Dense {
	g := mat.NewDense(h.d, h.d)
	h.GramInto(g)
	return g
}

// GramInto overwrites dst (which must be D×D) with BᵀB of the stacked
// sketch, without allocating or copying bucket rows.
func (h *Histogram) GramInto(dst *mat.Dense) {
	dst.Zero()
	for i := range h.buckets {
		b := &h.buckets[i]
		if b.single() {
			mat.OuterAdd(dst, b.row, 1)
		} else {
			b.sk.GramAddTo(dst, 1)
		}
	}
}

// Buckets returns the number of live buckets.
func (h *Histogram) Buckets() int { return len(h.buckets) }

// SpaceWords estimates the structure's space usage in words: sketch rows
// plus per-bucket bookkeeping. It allocates nothing — protocols charge it
// per ingested row.
func (h *Histogram) SpaceWords() int {
	words := 0
	for i := range h.buckets {
		b := &h.buckets[i]
		if b.single() {
			words += h.d + 4
		} else {
			words += b.sk.NumRows()*h.d + 4
		}
	}
	return words
}

// RowsInReverse feeds every sketch row to fn in reverse time order (newest
// bucket first), tagging each row with its bucket's oldest timestamp. DA2
// uses this to replay a closed window backwards through an IWMT instance
// when the site does not retain raw rows. The v slice aliases internal
// storage and is only valid for the duration of the call; fn must copy
// anything it retains.
func (h *Histogram) RowsInReverse(fn func(t int64, v []float64)) {
	for i := len(h.buckets) - 1; i >= 0; i-- {
		b := &h.buckets[i]
		if b.single() {
			fn(b.oldest, b.row)
			continue
		}
		rows := b.sk.RowsView()
		for r := 0; r < rows.Rows(); r++ {
			fn(b.oldest, rows.Row(r))
		}
	}
}
