package meh

import (
	"fmt"

	"distwindow/internal/fd"
)

// BucketSnapshot is one serialized mEH bucket: either a single lazy row or
// a full FD sketch.
type BucketSnapshot struct {
	Row            []float64 // non-nil for single-row buckets
	Sketch         *fd.Snapshot
	FrobSq         float64
	Newest, Oldest int64
}

// Snapshot is a serializable copy of a Histogram.
type Snapshot struct {
	W       int64
	D       int
	Eps2    float64
	Ell     int
	Buckets []BucketSnapshot
	Pending int
}

// Snapshot captures the histogram's state.
func (h *Histogram) Snapshot() Snapshot {
	bs := make([]BucketSnapshot, len(h.buckets))
	for i := range h.buckets {
		b := &h.buckets[i]
		snap := BucketSnapshot{FrobSq: b.frobSq, Newest: b.newest, Oldest: b.oldest}
		if b.row != nil {
			snap.Row = append([]float64(nil), b.row...)
		}
		if b.sk != nil {
			s := b.sk.Snapshot()
			snap.Sketch = &s
		}
		bs[i] = snap
	}
	return Snapshot{W: h.w, D: h.d, Eps2: h.eps2, Ell: h.ell, Buckets: bs, Pending: h.pending}
}

// Restore rebuilds a histogram from a snapshot.
func Restore(sn Snapshot) (*Histogram, error) {
	if sn.W <= 0 || sn.D < 1 || sn.Ell < 1 || sn.Eps2 <= 0 {
		return nil, fmt.Errorf("meh: invalid snapshot w=%d d=%d ℓ=%d", sn.W, sn.D, sn.Ell)
	}
	h := &Histogram{w: sn.W, d: sn.D, eps2: sn.Eps2, ell: sn.Ell, pending: sn.Pending}
	h.buckets = make([]bucket, len(sn.Buckets))
	for i, b := range sn.Buckets {
		nb := bucket{frobSq: b.FrobSq, newest: b.Newest, oldest: b.Oldest}
		if b.Row != nil {
			if len(b.Row) != sn.D {
				return nil, fmt.Errorf("meh: snapshot bucket %d row length %d", i, len(b.Row))
			}
			nb.row = append([]float64(nil), b.Row...)
		}
		if b.Sketch != nil {
			sk, err := fd.Restore(*b.Sketch)
			if err != nil {
				return nil, fmt.Errorf("meh: snapshot bucket %d: %w", i, err)
			}
			nb.sk = sk
		}
		if nb.row == nil && nb.sk == nil {
			return nil, fmt.Errorf("meh: snapshot bucket %d empty", i)
		}
		h.buckets[i] = nb
	}
	return h, nil
}
