package meh

import (
	"sync"

	"distwindow/internal/fd"
)

// Pool shares released mEH storage — single-row buffers and bucket FD
// sketches — across histograms. Each Histogram keeps its private freelists
// for the per-row hot path (those stay lock-free and make steady-state Add
// allocation-free); the shared pool sits behind them and is consulted only
// on a freelist miss, so its mutex is touched during warm-up and after
// Release, never per row at steady state.
//
// Multi-tenant registries hang one Pool off every tracker they open: a
// stream evicted after filling its window donates its buffers back via
// Histogram.Release, and the next stream opened at the same dimension
// starts warm instead of re-paying the window's worth of allocations.
//
// All methods are safe for concurrent use; a nil *Pool is valid and inert.
type Pool struct {
	mu   sync.Mutex
	rows map[int][][]float64
	sks  map[skKey][]*fd.Sketch
}

// skKey identifies a sketch shape: recycled sketches are only handed to
// histograms with matching FD size and dimension.
type skKey struct{ ell, d int }

// Per-key retention caps: beyond them, donated buffers go to the GC. Rows
// dominate an evicted histogram's storage (one per single-row bucket), so
// the row cap covers several windows' worth; sketch churn is far lower.
const (
	poolMaxRows     = 4096
	poolMaxSketches = 256
)

// NewPool returns an empty shared pool.
func NewPool() *Pool { return &Pool{} }

// GetRow returns a recycled d-length row buffer, or nil when none is
// pooled. Contents are stale; callers must overwrite.
func (p *Pool) GetRow(d int) []float64 {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	free := p.rows[d]
	n := len(free)
	if n == 0 {
		return nil
	}
	r := free[n-1]
	free[n-1] = nil
	p.rows[d] = free[:n-1]
	return r
}

// PutRow donates a row buffer to the pool.
func (p *Pool) PutRow(r []float64) {
	if p == nil || len(r) == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rows == nil {
		p.rows = make(map[int][][]float64)
	}
	if len(p.rows[len(r)]) < poolMaxRows {
		p.rows[len(r)] = append(p.rows[len(r)], r)
	}
}

// GetSketch returns a recycled, reset sketch of the given shape, or nil
// when none is pooled.
func (p *Pool) GetSketch(ell, d int) *fd.Sketch {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	free := p.sks[skKey{ell, d}]
	n := len(free)
	if n == 0 {
		return nil
	}
	sk := free[n-1]
	free[n-1] = nil
	p.sks[skKey{ell, d}] = free[:n-1]
	return sk
}

// PutSketch donates a sketch to the pool, resetting it first so pooled
// sketches are interchangeable with fresh ones.
func (p *Pool) PutSketch(sk *fd.Sketch) {
	if p == nil || sk == nil {
		return
	}
	sk.Reset()
	key := skKey{sk.L(), sk.D()}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.sks == nil {
		p.sks = make(map[skKey][]*fd.Sketch)
	}
	if len(p.sks[key]) < poolMaxSketches {
		p.sks[key] = append(p.sks[key], sk)
	}
}

// Idle reports the pooled buffer counts (rows, sketches) across all shapes.
func (p *Pool) Idle() (rows, sketches int) {
	if p == nil {
		return 0, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.rows {
		rows += len(f)
	}
	for _, f := range p.sks {
		sketches += len(f)
	}
	return rows, sketches
}
