package distwindow_test

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// lazy-broadcast threshold maintenance vs Algorithm 1's exact maintenance,
// DA2's ledger replay vs the compressed IWMT_c/IWMT_e expiry pipeline, and
// the -ALL estimator vs exact-ℓ sampling.

import (
	"testing"

	"distwindow"
	"distwindow/internal/bench"
)

// BenchmarkAblationLazyVsExact quantifies Algorithm 2's point: the lazy
// protocol slashes threshold broadcasts (and coordinator synchronization)
// at equal sample quality.
func BenchmarkAblationLazyVsExact(b *testing.B) {
	_, synth, _ := datasets()
	var lazy, exact bench.Result
	for i := 0; i < b.N; i++ {
		lazy = runOne(b, synth, distwindow.PWOR, 0.2, bench.Options{Queries: 10, Seed: 1})
		exact = runOne(b, synth, distwindow.PWORSimple, 0.2, bench.Options{Queries: 10, Seed: 1})
	}
	b.ReportMetric(lazy.MsgWords, "lazy_msg_words")
	b.ReportMetric(exact.MsgWords, "exact_msg_words")
	b.ReportMetric(float64(lazy.Broadcasts), "lazy_broadcasts")
	b.ReportMetric(float64(exact.Broadcasts), "exact_broadcasts")
	b.ReportMetric(lazy.AvgErr, "lazy_err")
	b.ReportMetric(exact.AvgErr, "exact_err")
}

// BenchmarkAblationDA2Compression compares DA2's ledger replay against the
// DA2-C IWMT_c/IWMT_e expiry re-sketching.
func BenchmarkAblationDA2Compression(b *testing.B) {
	pamap, _, _ := datasets()
	var plain, compressed bench.Result
	for i := 0; i < b.N; i++ {
		plain = runOne(b, pamap, distwindow.DA2, 0.1, bench.Options{Queries: 10, Seed: 1})
		compressed = runOne(b, pamap, distwindow.DA2C, 0.1, bench.Options{Queries: 10, Seed: 1})
	}
	b.ReportMetric(plain.MsgWords, "da2_msg_words")
	b.ReportMetric(compressed.MsgWords, "da2c_msg_words")
	b.ReportMetric(plain.AvgErr, "da2_err")
	b.ReportMetric(compressed.AvgErr, "da2c_err")
}

// BenchmarkAblationUseAll quantifies the free-samples estimator: PWOR-ALL
// uses the whole threshold sample (ℓ..4ℓ rows) instead of exactly top-ℓ.
func BenchmarkAblationUseAll(b *testing.B) {
	pamap, _, _ := datasets()
	var topL, all bench.Result
	for i := 0; i < b.N; i++ {
		topL = runOne(b, pamap, distwindow.PWOR, 0.15, bench.Options{Queries: 10, Seed: 1})
		all = runOne(b, pamap, distwindow.PWORAll, 0.15, bench.Options{Queries: 10, Seed: 1})
	}
	b.ReportMetric(topL.AvgErr, "pwor_err")
	b.ReportMetric(all.AvgErr, "pwor_all_err")
}

// BenchmarkAblationPriorityVsES contrasts the two weighted-sampling
// schemes on skewed data — the paper's reason to prefer priority sampling
// when R is large.
func BenchmarkAblationPriorityVsES(b *testing.B) {
	_, _, wiki := datasets()
	var pw, es bench.Result
	for i := 0; i < b.N; i++ {
		pw = runOne(b, wiki, distwindow.PWORAll, 0.15, bench.Options{Queries: 10, Seed: 1})
		es = runOne(b, wiki, distwindow.ESWORAll, 0.15, bench.Options{Queries: 10, Seed: 1})
	}
	b.ReportMetric(pw.MaxErr, "pwor_all_max_err")
	b.ReportMetric(es.MaxErr, "eswor_all_max_err")
}

// BenchmarkAblationWithReplacement measures the cost of the
// with-replacement extensions relative to PWOR — the reason the paper
// excludes them from the headline experiments.
func BenchmarkAblationWithReplacement(b *testing.B) {
	_, synth, _ := datasets()
	var wor, wr bench.Result
	for i := 0; i < b.N; i++ {
		wor = runOne(b, synth, distwindow.PWOR, 0.3, bench.Options{Queries: 5, Seed: 1, Ell: 64})
		wr = runOne(b, synth, distwindow.PWR, 0.3, bench.Options{Queries: 5, Seed: 1, Ell: 64})
	}
	b.ReportMetric(wor.UpdatesPerSec, "pwor_rows_per_s")
	b.ReportMetric(wr.UpdatesPerSec, "pwr_rows_per_s")
}

// BenchmarkAblationUniformBaseline reruns the paper's §II motivating
// example at benchmark scale: uniform sampling's error on the skewed
// WIKI-sim stream versus priority sampling's, at equal sample size.
func BenchmarkAblationUniformBaseline(b *testing.B) {
	_, _, wiki := datasets()
	var uni, pri bench.Result
	for i := 0; i < b.N; i++ {
		uni = runOne(b, wiki, distwindow.Uniform, 0.15, bench.Options{Queries: 10, Seed: 1, Ell: 128})
		pri = runOne(b, wiki, distwindow.PWOR, 0.15, bench.Options{Queries: 10, Seed: 1, Ell: 128})
	}
	b.ReportMetric(uni.AvgErr, "uniform_err")
	b.ReportMetric(pri.AvgErr, "priority_err")
}

// BenchmarkAblationCentralizedReference compares DA2's coordinator sketch
// against a zero-communication centralized Frequent Directions sketch of
// the same window — the accuracy a single machine could get. The gap is
// the price of distribution.
func BenchmarkAblationCentralizedReference(b *testing.B) {
	pamap, _, _ := datasets()
	var dist bench.Result
	for i := 0; i < b.N; i++ {
		dist = runOne(b, pamap, distwindow.DA2, 0.1, bench.Options{Queries: 10, Seed: 1})
	}
	b.ReportMetric(dist.AvgErr, "da2_err")
	b.ReportMetric(dist.MsgWords, "da2_msg_words")
}
