package distwindow

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"distwindow/internal/obs"
	"distwindow/internal/protocol"
	"distwindow/mat"
)

// This file holds the lock-free published-snapshot read path: immutable,
// versioned copies of the coordinator's small state, swapped in via an
// atomic pointer, so queries never contend with ingest.
//
// Arming (WithSnapshots) publishes version 1 at construction, so an armed
// tracker always has a snapshot to serve: Sketch, SketchGram, Snapshot and
// the analytics derived from them become pure reads of the latest
// published version, safe from any number of goroutines while ingestion
// runs. Publication happens on the goroutine that owns coordinator applies
// (the ingest goroutine sequentially, the pipeline's coordinator goroutine
// in parallel mode), every snapEvery events, plus at every drain point —
// Drain, FlushSkew, Close — so "Drain then query" reads an exact,
// fully-caught-up state.
//
// Unarmed trackers keep the legacy exact read path, hardened: a queryGate
// detects (and excludes) in-flight ingest instead of silently racing with
// it.

// defaultSnapEvery is the publication cadence when WithSnapshots(0) asks
// for the default: one publish per 256 events (sequential: delivered rows
// and clock advances; parallel: applied coordinator updates). The d×d copy
// a publish performs is amortized to a few floats per event.
const defaultSnapEvery = 256

// queryGate coordinates exact coordinator reads with ingestion. It is a
// tiny reader-writer try-lock over one atomic word: ≥0 counts in-flight
// ingest operations (shared holders), −1 marks an exclusive holder (an
// exact query, a drain, or Close). Armed snapshot reads never touch the
// gate — they only load the published pointer.
type queryGate struct{ state atomic.Int64 }

func (g *queryGate) enterShared() {
	for i := 0; ; i++ {
		v := g.state.Load()
		if v >= 0 && g.state.CompareAndSwap(v, v+1) {
			return
		}
		gateBackoff(i)
	}
}

func (g *queryGate) exitShared() { g.state.Add(-1) }

// tryExclusive claims the gate iff no ingest call (and no other exclusive
// holder) is in flight.
func (g *queryGate) tryExclusive() bool { return g.state.CompareAndSwap(0, -1) }

// exclusive blocks until the gate is free, then claims it. In-flight
// ingest calls finish; new ones spin in enterShared until release.
func (g *queryGate) exclusive() {
	for i := 0; !g.tryExclusive(); i++ {
		gateBackoff(i)
	}
}

func (g *queryGate) exitExclusive() { g.state.Store(0) }

// gateBackoff yields briefly, then backs off to short sleeps; gate waits
// are bounded by in-flight calls (shared sections never block on the gate,
// exclusive sections are a drain plus an O(d²) copy).
func gateBackoff(i int) {
	if i < 100 {
		runtime.Gosched()
	} else {
		time.Sleep(50 * time.Microsecond)
	}
}

// Snapshot is one immutable published version of the coordinator's sketch
// state. All methods are safe for concurrent use by any number of
// goroutines, and a Snapshot stays valid indefinitely — across later
// publications, Drain, Close and even Registry eviction (its storage is
// owned copies, never pooled buffers).
//
// Derived results (the factored sketch, PCA bases, anomaly scorers) are
// computed lazily once per snapshot and cached, so N concurrent queriers
// of one version share a single O(d³) factorization.
type Snapshot struct {
	version     uint64
	deliveredAt int64
	rows        int64
	proto       string
	coord       protocol.CoordSnapshot

	mu      sync.Mutex
	sketch  *mat.Dense
	pca     map[int]PCA
	scorers map[int]*AnomalyScorer
}

// Version is the snapshot's publication sequence number, starting at 1
// (the empty state published when snapshots are armed). Versions increase
// by exactly 1 per publication.
func (s *Snapshot) Version() uint64 { return s.version }

// DeliveredAt is the stream timestamp watermark the snapshot reflects: the
// highest timestamp delivered to the protocol (sequential mode) or applied
// at the coordinator (parallel mode) when the snapshot was taken.
// math.MinInt64 until anything was delivered.
func (s *Snapshot) DeliveredAt() int64 { return s.deliveredAt }

// Rows is the tracker's delivered-row count when the snapshot was taken.
// In parallel mode rows are counted at the sites while the snapshot cuts
// at the coordinator's apply order, so the figure is approximate there.
func (s *Snapshot) Rows() int64 { return s.rows }

// Protocol is the display name of the protocol that produced the snapshot.
func (s *Snapshot) Protocol() string { return s.proto }

// Sketch returns the snapshot's covariance sketch B (see Tracker.Sketch).
// The result is a fresh copy owned by the caller; the underlying
// factorization is computed once per snapshot and cached.
func (s *Snapshot) Sketch() *mat.Dense { return s.cachedSketch().Clone() }

// SketchGram returns a copy of the snapshot's coordinator Gram estimate
// Ĉ ≈ A_wᵀA_w when the protocol maintains one (the deterministic family;
// see Tracker.SketchGram). The copy is owned by the caller.
func (s *Snapshot) SketchGram() (*mat.Dense, bool) {
	g, ok := s.coord.Gram()
	if !ok {
		return nil, false
	}
	return g.Clone(), true
}

// PCA returns the snapshot's approximate top-k principal component basis
// (see SketchPCA). The basis is computed once per (snapshot, k) and
// cached; the returned PCA is a copy owned by the caller.
func (s *Snapshot) PCA(k int) PCA {
	p := s.cachedPCA(k)
	return PCA{
		Components: p.Components.Clone(),
		Values:     append([]float64(nil), p.Values...),
	}
}

// AnomalyScorer returns a scorer over the snapshot's top-k subspace (see
// NewAnomalyScorer). The scorer is cached per (snapshot, k) and shared:
// Score only reads the basis, so one scorer may serve any number of
// concurrent callers.
func (s *Snapshot) AnomalyScorer(k int) *AnomalyScorer {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sc, ok := s.scorers[k]; ok {
		return sc
	}
	sc := &AnomalyScorer{basis: s.pcaLocked(k).Components}
	if s.scorers == nil {
		s.scorers = make(map[int]*AnomalyScorer)
	}
	s.scorers[k] = sc
	return sc
}

func (s *Snapshot) cachedSketch() *mat.Dense {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sketchLocked()
}

func (s *Snapshot) sketchLocked() *mat.Dense {
	if s.sketch == nil {
		s.sketch = s.coord.Sketch()
	}
	return s.sketch
}

func (s *Snapshot) cachedPCA(k int) PCA {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pcaLocked(k)
}

func (s *Snapshot) pcaLocked(k int) PCA {
	if p, ok := s.pca[k]; ok {
		return p
	}
	p := SketchPCA(s.sketchLocked(), k)
	if s.pca == nil {
		s.pca = make(map[int]PCA)
	}
	s.pca[k] = p
	return p
}

// armSnapshots turns on snapshot publication and publishes version 1 (the
// tracker's pre-traffic state), so the read path never observes "no
// snapshot yet". Called by applyOptions before the parallel pipeline
// starts, so the coordinator goroutine inherits the armed state.
func (t *Tracker) armSnapshots(every int) error {
	sn, ok := t.inner.(protocol.Snapshotter)
	if !ok {
		return fmt.Errorf("%w: protocol %s cannot publish coordinator snapshots", ErrOptionUnsupported, t.inner.Name())
	}
	if every <= 0 {
		every = defaultSnapEvery
	}
	t.snapper, t.snapEvery, t.snapArmed = sn, every, true
	t.publishAt(math.MinInt64)
	return nil
}

// publishAt freezes the coordinator state into a new snapshot version and
// swaps it in. It must run on the goroutine that owns coordinator applies
// (or with that goroutine provably idle: after a drain barrier with the
// gate held exclusively).
func (t *Tracker) publishAt(at int64) {
	s := &Snapshot{
		version:     t.snapVer.Add(1),
		deliveredAt: at,
		rows:        t.rows.Load(),
		proto:       t.inner.Name(),
		coord:       t.snapper.SnapshotCoord(),
	}
	t.snap.Store(s)
	t.snapPubs.Inc()
	t.snapSince = 0
	if t.sink != nil {
		evAt := at
		if evAt == math.MinInt64 {
			evAt = 0
		}
		t.sink.OnEvent(obs.Event{Kind: obs.EvSnapshotPublish, Site: -1, T: evAt, N: int(s.version)})
	}
}

// snapTick advances the sequential publication cadence by one event
// (a delivered row or a clock advance); ingest goroutine only.
func (t *Tracker) snapTick() {
	if !t.snapArmed {
		return
	}
	t.snapSince++
	if t.snapSince >= t.snapEvery {
		t.publishAt(t.delivered)
	}
}

// Snapshot returns an immutable, versioned view of the coordinator state.
//
// On a tracker built WithSnapshots it returns the latest published version
// without taking any lock — safe from any goroutine while ingestion runs,
// lagging live ingest by at most the publication cadence (call Drain first
// for an exact, fully-caught-up version). On other trackers it takes a
// one-off exact snapshot when no ingest call is in flight — briefly
// excluding new ones — and fails with ErrQueryDuringIngest otherwise,
// making the un-quiesced query a loud error instead of a data race.
func (t *Tracker) Snapshot() (*Snapshot, error) {
	if t.snapArmed {
		return t.snap.Load(), nil
	}
	snapper, ok := t.inner.(protocol.Snapshotter)
	if !ok {
		return nil, fmt.Errorf("%w: protocol %s cannot publish coordinator snapshots", ErrOptionUnsupported, t.inner.Name())
	}
	if !t.gate.tryExclusive() {
		return nil, fmt.Errorf("%w: build the tracker WithSnapshots for lock-free queries, or quiesce the feeders", ErrQueryDuringIngest)
	}
	t.snapper = snapper
	var at int64
	if t.pipe != nil {
		at = t.quiesceAt(false)
	} else {
		at = t.delivered
	}
	t.publishAt(at)
	s := t.snap.Load()
	t.gate.exitExclusive()
	return s, nil
}

// SnapshotVersion returns the latest published snapshot's version, or 0
// when none has been published. Safe from any goroutine.
func (t *Tracker) SnapshotVersion() uint64 {
	if s := t.snap.Load(); s != nil {
		return s.version
	}
	return 0
}

// SnapshotsEnabled reports whether the tracker was built WithSnapshots.
func (t *Tracker) SnapshotsEnabled() bool { return t.snapArmed }

// Closed reports whether Close was called. Queries (and snapshots taken
// earlier) remain usable on a closed tracker; ingestion does not. Safe
// from any goroutine — serving tiers use it to turn queries against an
// evicted stream into an error instead of undefined behavior.
func (t *Tracker) Closed() bool { return t.closed.Load() }
