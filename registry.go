package distwindow

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"sync/atomic"

	"distwindow/internal/core"
	"distwindow/internal/obs"
	"distwindow/internal/tenant"
)

// Registry owns many concurrently-tracked streams behind one handle: a
// sharded map of stream id → Tracker, shared storage pools so thousands
// of tenants reuse decomposition workspaces and mEH bucket storage
// instead of allocating per stream, and aggregate observability across
// every stream it owns.
//
// Concurrency: Open, Get, Evict, Range, Len, Metrics and the HTTP
// handler may all be called concurrently from any goroutine — lookups
// take only a shard read lock and do not allocate, so a per-row
// Registry.Get costs nothing against the 0 allocs/row ingest budget.
// Each Tracker keeps its own concurrency contract (one ingest goroutine
// per sequential tracker; per-site feeders with WithParallel); the
// registry adds exactly one rule on top: Evict must not race with
// ingestion on the stream being evicted, because eviction donates the
// tracker's storage back to the shared pools and a still-running
// observer would write into buffers another stream may have claimed.
//
// Determinism survives multi-tenancy: pooled buffers are zeroed or
// fully overwritten on reuse, so a stream tracked through a Registry is
// bit-for-bit identical to the same stream tracked by a standalone New
// tracker (the registry determinism test locks this in).
type Registry struct {
	entries *tenant.Map[*registryEntry]
	pools   core.Pools
	// events tallies every stream's events in one place; each entry also
	// counts privately, so per-stream and aggregate views are both O(1).
	events  *obs.CountingSink
	opened  atomic.Int64
	evicted atomic.Int64
}

// registryEntry pairs a tracker with its private event tally.
type registryEntry struct {
	t      *Tracker
	events *obs.CountingSink
}

// NewRegistry returns an empty registry with freshly-created shared
// pools. Trackers opened through it share workspace and mEH storage;
// trackers built directly with New never touch a registry's pools.
func NewRegistry() *Registry {
	return &Registry{
		entries: tenant.NewMap[*registryEntry](0),
		pools:   core.NewPools(),
		events:  &obs.CountingSink{},
	}
}

// Open returns the tracker for id, creating it from cfg and opts if the
// id is new. created reports which happened; when the stream already
// exists, cfg and opts are ignored — the first Open wins, matching the
// exactly-one-constructor guarantee the sharded map provides under
// concurrent opens. Construction errors (invalid cfg, unsupported option
// combinations) are New's errors and store nothing.
//
// The tracker's events flow into the registry's aggregate tally and a
// per-stream tally (see Metrics and StreamMetrics) as well as any sink
// passed via WithSink, and its storage draws from the registry's shared
// pools. Everything else about the returned *Tracker — TryObserve,
// Advance, Sketch, Estimate, checkpointing — is the ordinary facade API.
func (r *Registry) Open(id string, cfg Config, opts ...Option) (t *Tracker, created bool, err error) {
	if id == "" {
		return nil, false, fmt.Errorf("distwindow: empty stream id")
	}
	e, created, err := r.entries.LoadOrCreate(id, func() (*registryEntry, error) {
		o := buildOptions(opts)
		per := &obs.CountingSink{}
		sinks := obs.MultiSink{per, r.events}
		if o.haveSink {
			sinks = append(sinks, o.sink)
		}
		o.sink, o.haveSink = sinks, true
		o.pools = r.pools
		trk, err := newWithOptions(cfg, o)
		if err != nil {
			return nil, err
		}
		return &registryEntry{t: trk, events: per}, nil
	})
	if err != nil {
		return nil, false, err
	}
	if created {
		r.opened.Add(1)
	}
	return e.t, created, nil
}

// Get returns the tracker for id, if open. It takes only a shard read
// lock and performs no allocations — safe to call per row.
func (r *Registry) Get(id string) (*Tracker, bool) {
	e, ok := r.entries.Get(id)
	if !ok {
		return nil, false
	}
	return e.t, true
}

// ShardOf returns the index of the internal shard owning id — a stable,
// alloc-free hash assignment in [0, registry shard count). Use it to give
// ingest workers shard-ownership of streams: a feeder plane that routes
// stream id to worker ShardOf(id) % workers keeps each stream's whole row
// path on one goroutine (handle resolution hoisted out of the row loop, no
// cross-worker handoff) and aligns worker lock traffic with the registry's
// lock stripes.
func (r *Registry) ShardOf(id string) int { return r.entries.ShardOf(id) }

// IngestWorkers clamps a requested ingest-plane worker count to what can
// actually run in parallel: at most one worker per stream (a stream's rows
// are ordered, so extra workers would idle) and at most GOMAXPROCS
// (oversubscribing cores makes the scheduler rotate working sets through
// the cache and *loses* throughput — the BENCH_PR8 registry sweep measured
// 4 workers on one core at two-thirds the 1-worker rate). Feeders should
// size their goroutine pool with this and stripe streams across it,
// resolving each stream's handle once per run, not per row.
func (r *Registry) IngestWorkers(requested, streams int) int {
	w := requested
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	if streams >= 1 && w > streams {
		w = streams
	}
	if max := runtime.GOMAXPROCS(0); w > max {
		w = max
	}
	return w
}

// Evict closes the stream's tracker, donates its pooled storage
// (workspaces, mEH rows and sketches) back to the registry's shared
// pools for other streams to reuse, and removes the id. It reports
// whether the stream existed. The caller must guarantee no goroutine is
// still observing into the evicted stream; concurrent traffic on other
// streams is fine.
func (r *Registry) Evict(id string) bool {
	e, ok := r.entries.Delete(id)
	if !ok {
		return false
	}
	e.t.Close()
	if rel, ok := e.t.inner.(core.Releaser); ok {
		rel.Release()
	}
	r.evicted.Add(1)
	return true
}

// Range calls fn for every open stream until fn returns false. fn may
// call back into the registry (including Evict); streams opened or
// evicted while Range runs may or may not be visited.
func (r *Registry) Range(fn func(id string, t *Tracker) bool) {
	r.entries.Range(func(id string, e *registryEntry) bool {
		return fn(id, e.t)
	})
}

// Len returns the number of open streams.
func (r *Registry) Len() int { return r.entries.Len() }

// Close evicts every stream. The registry remains usable (a drained
// pool set and zero streams), so Close doubles as a reset.
func (r *Registry) Close() {
	for _, id := range r.entries.Keys() {
		r.Evict(id)
	}
}

// RegistryMetrics is a point-in-time aggregate snapshot across every
// stream a Registry owns.
type RegistryMetrics struct {
	// Streams is the number of currently-open streams.
	Streams int
	// Opened and Evicted count lifecycle transitions since creation;
	// Opened-Evicted equals Streams when nothing is mid-churn.
	Opened  int64
	Evicted int64
	// Events tallies every stream's observability events by kind name
	// (bucket lifecycle, message traffic, skew drops, …).
	Events map[string]int64
	// PooledWorkspaces, PooledRows and PooledSketches count idle pooled
	// storage waiting for reuse — evicted tenants' donations that new
	// streams will claim instead of allocating.
	PooledWorkspaces int
	PooledRows       int
	PooledSketches   int
}

// Metrics returns the aggregate snapshot. Safe to call at any time from
// any goroutine.
func (r *Registry) Metrics() RegistryMetrics {
	m := RegistryMetrics{
		Streams: r.entries.Len(),
		Opened:  r.opened.Load(),
		Evicted: r.evicted.Load(),
		Events:  r.events.Counts(),
	}
	m.PooledWorkspaces = r.pools.WS.Idle()
	m.PooledRows, m.PooledSketches = r.pools.Meh.Idle()
	return m
}

// StreamMetrics returns one stream's tracker Metrics plus its private
// event tally, if the stream is open.
func (r *Registry) StreamMetrics(id string) (Metrics, map[string]int64, bool) {
	e, ok := r.entries.Get(id)
	if !ok {
		return Metrics{}, nil, false
	}
	return e.t.Metrics(), e.events.Counts(), true
}

// streamSummary is one row of the /streams listing.
type streamSummary struct {
	ID       string
	Protocol string
	Rows     int64
	Events   map[string]int64
}

// MetricsHandler returns an http.Handler for the registry:
//
//	GET /metrics  — aggregate RegistryMetrics (JSON)
//	GET /streams  — per-stream listing, sorted by id: protocol, row
//	                count and event tally for every open stream
//	GET /healthz  — process liveness
//
// plus expvar under /debug/vars and whatever extra endpoints the options
// mount (WithPprof, WithHandler). Per-stream deep dives keep using the
// individual Tracker.MetricsHandler; this handler is the fleet view.
func (r *Registry) MetricsHandler(opts ...MuxOption) http.Handler {
	streams := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		var out []streamSummary
		r.entries.Range(func(id string, e *registryEntry) bool {
			out = append(out, streamSummary{
				ID:       id,
				Protocol: e.t.inner.Name(),
				Rows:     e.t.rows.Load(),
				Events:   e.events.Counts(),
			})
			return true
		})
		sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	})
	all := append([]MuxOption{
		obs.WithHandler("/streams", streams),
		obs.WithPrometheus(r.WritePrometheusTo),
	}, opts...)
	return obs.Mux(
		func() (any, bool) { return r.Metrics(), true },
		func() bool { return true },
		all...,
	)
}

// WritePrometheusTo writes the registry's aggregate counters plus one
// per-stream series set (rows, words, update latency, labeled by stream
// and protocol) in the Prometheus text exposition format — what
// MetricsHandler serves to scrapers via content negotiation. With
// thousands of streams the exposition grows linearly; scrape accordingly
// or front it with the aggregate-only JSON view.
func (r *Registry) WritePrometheusTo(w io.Writer) error {
	pw := obs.NewPromWriter(w)
	m := r.Metrics()
	pw.Gauge("distwindow_registry_streams", "Currently open streams.", nil, float64(m.Streams))
	pw.Counter("distwindow_registry_opened_total", "Streams opened since creation.", nil, float64(m.Opened))
	pw.Counter("distwindow_registry_evicted_total", "Streams evicted since creation.", nil, float64(m.Evicted))
	pw.Gauge("distwindow_registry_pooled_workspaces", "Idle pooled decomposition workspaces.", nil, float64(m.PooledWorkspaces))
	pw.Gauge("distwindow_registry_pooled_rows", "Idle pooled mEH rows.", nil, float64(m.PooledRows))
	pw.Gauge("distwindow_registry_pooled_sketches", "Idle pooled sketches.", nil, float64(m.PooledSketches))
	names := make([]string, 0, len(m.Events))
	for name := range m.Events {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pw.Counter("distwindow_registry_events_total", "Observability events across every stream, by kind.",
			[]obs.Label{{Name: "kind", Value: name}}, float64(m.Events[name]))
	}
	r.entries.Range(func(id string, e *registryEntry) bool {
		sm := e.t.Metrics()
		ls := []obs.Label{
			{Name: "stream", Value: id},
			{Name: "protocol", Value: sm.Protocol},
		}
		pw.Counter("distwindow_stream_rows_total", "Rows delivered into the stream's protocol.", ls, float64(sm.Rows))
		pw.Counter("distwindow_stream_words_up_total", "Stream words sent from sites to the coordinator.", ls, float64(sm.Net.WordsUp))
		pw.Histogram("distwindow_stream_update_latency_seconds", "Sampled per-row update latency.", ls, sm.UpdateLatency)
		if sm.SnapshotVersion > 0 {
			pw.Gauge("distwindow_stream_snapshot_version", "Latest published sketch snapshot version.", ls, float64(sm.SnapshotVersion))
			pw.Gauge("distwindow_stream_snapshot_lag_rows", "Rows delivered since the latest snapshot.", ls, float64(sm.SnapshotLagRows))
		}
		return true
	})
	return pw.Err()
}
