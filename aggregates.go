package distwindow

import (
	"fmt"

	"distwindow/internal/freq"
	"distwindow/internal/protocol"
)

// This file exposes the deterministic-template generalizations of §III-A:
// beyond SUM/COUNT (AggregateTracker), the same site-side C − Ĉ reporting
// rule tracks item frequencies and order statistics over the distributed
// sliding window — the aggregate queries the paper notes its framework
// simplifies relative to Cormode–Yi.

// FrequencyTracker tracks per-item frequencies over the union window with
// additive error ε·N (N = number of active items). Heavy hitters follow
// directly from TopK.
type FrequencyTracker struct {
	inner *freq.FrequencyTracker
	net   *protocol.Network
}

// NewFrequency builds a frequency tracker; only W, Eps and Sites of cfg
// are used.
func NewFrequency(cfg Config) (*FrequencyTracker, error) {
	if cfg.Sites < 1 {
		return nil, fmt.Errorf("distwindow: Sites = %d, want ≥ 1", cfg.Sites)
	}
	net := protocol.NewNetwork(cfg.Sites)
	inner, err := freq.NewFrequency(cfg.W, cfg.Eps, cfg.Sites, net)
	if err != nil {
		return nil, err
	}
	return &FrequencyTracker{inner: inner, net: net}, nil
}

// Observe records one occurrence of item x at the given site and time.
func (t *FrequencyTracker) Observe(site int, now int64, x int64) {
	t.inner.Observe(site, now, x)
}

// Advance moves every site's clock forward.
func (t *FrequencyTracker) Advance(now int64) { t.inner.Advance(now) }

// Estimate returns the frequency estimate for item x, within ε·N.
func (t *FrequencyTracker) Estimate(x int64) float64 { return t.inner.Estimate(x) }

// Total returns the estimated number of active items.
func (t *FrequencyTracker) Total() float64 { return t.inner.Total() }

// HeavyHitter is one (item, estimated frequency) pair.
type HeavyHitter = freq.ItemCount

// TopK returns the window's k heaviest items in decreasing frequency.
func (t *FrequencyTracker) TopK(k int) []HeavyHitter { return t.inner.TopK(k) }

// Stats returns the communication counters accumulated so far.
func (t *FrequencyTracker) Stats() Stats { return t.net.Stats() }

// QuantileTracker tracks order statistics of values in [0, 1) over the
// union window: ranks within ε·N, quantiles within ε rank error.
type QuantileTracker struct {
	inner *freq.QuantileTracker
	net   *protocol.Network
}

// NewQuantile builds a quantile tracker; only W, Eps and Sites of cfg are
// used. Values must lie in [0, 1) — rescale beforehand.
func NewQuantile(cfg Config) (*QuantileTracker, error) {
	if cfg.Sites < 1 {
		return nil, fmt.Errorf("distwindow: Sites = %d, want ≥ 1", cfg.Sites)
	}
	net := protocol.NewNetwork(cfg.Sites)
	inner, err := freq.NewQuantile(cfg.W, cfg.Eps, cfg.Sites, net)
	if err != nil {
		return nil, err
	}
	return &QuantileTracker{inner: inner, net: net}, nil
}

// Observe records value v ∈ [0, 1) at the given site and time.
func (t *QuantileTracker) Observe(site int, now int64, v float64) {
	t.inner.Observe(site, now, v)
}

// Advance moves every site's clock forward.
func (t *QuantileTracker) Advance(now int64) { t.inner.Advance(now) }

// Rank returns the estimated number of active values < x.
func (t *QuantileTracker) Rank(x float64) float64 { return t.inner.Rank(x) }

// Quantile returns an approximate φ-quantile of the window.
func (t *QuantileTracker) Quantile(phi float64) float64 { return t.inner.Quantile(phi) }

// Total returns the estimated number of active values.
func (t *QuantileTracker) Total() float64 { return t.inner.Total() }

// Stats returns the communication counters accumulated so far.
func (t *QuantileTracker) Stats() Stats { return t.net.Stats() }
