package distwindow_test

import (
	"errors"
	"testing"

	"distwindow"
)

func TestConfigValidate(t *testing.T) {
	good := distwindow.Config{Protocol: distwindow.DA1, D: 4, W: 100, Eps: 0.1, Sites: 3}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name  string
		mut   func(*distwindow.Config)
		field string
	}{
		{"protocol", func(c *distwindow.Config) { c.Protocol = "NOPE" }, "Protocol"},
		{"dimension", func(c *distwindow.Config) { c.D = 0 }, "D"},
		{"window", func(c *distwindow.Config) { c.W = 0 }, "W"},
		{"epsilon", func(c *distwindow.Config) { c.Eps = 1.5 }, "Eps"},
		{"sites", func(c *distwindow.Config) { c.Sites = 0 }, "Sites"},
		{"ell", func(c *distwindow.Config) { c.Ell = -1 }, "Ell"},
		{"skew", func(c *distwindow.Config) { c.MaxSkew = -5 }, "MaxSkew"},
		{"gamma", func(c *distwindow.Config) { c.Protocol = distwindow.Decay; c.DecayGamma = 1.5 }, "DecayGamma"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := good
			tc.mut(&cfg)
			err := cfg.Validate()
			var ce *distwindow.ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("Validate() = %v, want *ConfigError", err)
			}
			if ce.Field != tc.field {
				t.Fatalf("Field = %q, want %q (msg %q)", ce.Field, tc.field, ce.Msg)
			}
			// New performs the identical validation.
			if _, nerr := distwindow.New(cfg); nerr == nil || nerr.Error() != err.Error() {
				t.Fatalf("New error %v != Validate error %v", nerr, err)
			}
		})
	}
	// Decay substitutes W internally; W = 0 must be fine for it.
	dec := distwindow.Config{Protocol: distwindow.Decay, D: 2, Eps: 0.1, Sites: 1, DecayGamma: 0.9}
	if err := dec.Validate(); err != nil {
		t.Fatalf("decay config with W=0 rejected: %v", err)
	}
}

func TestNewAggregateValidates(t *testing.T) {
	_, err := distwindow.NewAggregate(distwindow.Config{W: 10, Eps: 0.1, Sites: 0})
	var ce *distwindow.ConfigError
	if !errors.As(err, &ce) || ce.Field != "Sites" {
		t.Fatalf("got %v, want *ConfigError on Sites", err)
	}
	if _, err := distwindow.NewAggregate(distwindow.Config{W: 10, Eps: 0.1, Sites: 2}); err != nil {
		t.Fatalf("valid aggregate config rejected: %v", err)
	}
}

func TestWithParallelRejections(t *testing.T) {
	base := distwindow.Config{Protocol: distwindow.PWOR, D: 4, W: 100, Eps: 0.1, Sites: 2}
	if _, err := distwindow.New(base, distwindow.WithParallel(2)); !errors.Is(err, distwindow.ErrParallelUnsupported) {
		t.Fatalf("sampling protocol: got %v, want ErrParallelUnsupported", err)
	}
	da := base
	da.Protocol = distwindow.DA1
	if _, err := distwindow.New(da, distwindow.WithParallel(2), distwindow.WithTracing(distwindow.TraceConfig{SampleEvery: 1})); !errors.Is(err, distwindow.ErrParallelUnsupported) {
		t.Fatalf("tracing: got %v, want ErrParallelUnsupported", err)
	}
	if _, err := distwindow.New(da, distwindow.WithParallel(2), distwindow.WithAudit(distwindow.AuditConfig{})); !errors.Is(err, distwindow.ErrParallelUnsupported) {
		t.Fatalf("audit: got %v, want ErrParallelUnsupported", err)
	}
	// Post-hoc enabling on a live parallel tracker is likewise refused.
	tr, err := distwindow.New(da, distwindow.WithParallel(2))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if !tr.Parallel() {
		t.Fatal("Parallel() = false on a WithParallel tracker")
	}
	if err := tr.EnableAudit(distwindow.AuditConfig{}); !errors.Is(err, distwindow.ErrParallelUnsupported) {
		t.Fatalf("post-hoc EnableAudit: got %v", err)
	}
	tr.EnableTracing(distwindow.TraceConfig{SampleEvery: 1}) // documented no-op
	if tr.TracingEnabled() {
		t.Fatal("post-hoc EnableTracing took effect on a parallel tracker")
	}
}

func TestOptionWiring(t *testing.T) {
	cfg := distwindow.Config{Protocol: distwindow.DA1, D: 2, W: 50, Eps: 0.2, Sites: 2}
	var cs distwindow.CountingSink
	tr, err := distwindow.New(cfg,
		distwindow.WithSink(&cs),
		distwindow.WithTracing(distwindow.TraceConfig{SampleEvery: 1}),
		distwindow.WithAudit(distwindow.AuditConfig{EveryRows: 4}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.TracingEnabled() || !tr.AuditEnabled() {
		t.Fatalf("tracing=%v audit=%v, want both enabled", tr.TracingEnabled(), tr.AuditEnabled())
	}
	for i := int64(1); i <= 32; i++ {
		tr.Observe(int(i)%2, distwindow.Row{T: i, V: []float64{1, float64(i)}})
	}
	if cs.Count(distwindow.EvMsgSent) == 0 {
		t.Fatal("WithSink sink saw no message events")
	}
	if tr.TraceSpans() == 0 {
		t.Fatal("WithTracing recorded no spans")
	}
	if m, ok := tr.Audit(); !ok || m.Ticks == 0 {
		t.Fatalf("WithAudit measured nothing (ok=%v)", ok)
	}
	// The deprecated standalone getter must stay an alias of the snapshot.
	if tr.SkewDropped() != tr.Metrics().SkewDropped {
		t.Fatal("SkewDropped() and Metrics().SkewDropped disagree")
	}
	// Sequential trackers accept Drain/Close as no-ops.
	tr.Drain()
	tr.Close()
	if tr.Parallel() {
		t.Fatal("sequential tracker reports Parallel() = true")
	}
}
