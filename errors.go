package distwindow

import "errors"

// Sentinel errors returned (wrapped, with detail) by TryObserve and
// ObserveBatch. Match with errors.Is.
var (
	// ErrSiteRange reports a site index outside [0, Config.Sites).
	ErrSiteRange = errors.New("distwindow: site index out of range")
	// ErrDimension reports a row whose length differs from Config.D.
	ErrDimension = errors.New("distwindow: row dimension mismatch")
	// ErrStale reports a row that cannot be delivered because its timestamp
	// is in the past: older than the maximum timestamp already observed
	// (without MaxSkew), or beyond the skew horizon (with MaxSkew). Stale
	// rows are dropped and counted in Metrics; they are not an invariant
	// violation, so Observe swallows them rather than panicking.
	ErrStale = errors.New("distwindow: stale timestamp")
)

// Sentinel errors returned (wrapped, with detail) by Restore. Match with
// errors.Is.
var (
	// ErrCheckpointCorrupt reports a checkpoint that cannot be trusted:
	// undecodable bytes, a configuration that fails validation, or missing
	// tracker state.
	ErrCheckpointCorrupt = errors.New("distwindow: corrupt checkpoint")
	// ErrCheckpointMismatch reports a checkpoint whose declared protocol
	// disagrees with the state it actually carries — e.g. a DA1 header over
	// a DA2 snapshot. Restoring it would silently run the wrong protocol,
	// so the mismatch is an error rather than a best-effort guess.
	ErrCheckpointMismatch = errors.New("distwindow: checkpoint protocol mismatch")
)

// ErrOptionUnsupported is returned (wrapped, with detail) by constructors
// handed an option their tracker variant cannot honor — e.g. WithParallel,
// WithTracing or WithAudit on NewAggregate, whose scalar tracker has
// neither a pipeline nor a matrix shadow path. Match with errors.Is.
var ErrOptionUnsupported = errors.New("distwindow: option unsupported")

// ErrQueryDuringIngest is returned (wrapped, with detail) by
// Tracker.Snapshot on a tracker built without WithSnapshots when an ingest
// call is in flight: with no published snapshot to serve, answering would
// mean reading the coordinator state mid-mutation — the silent data race
// this error makes loud. Quiesce the feeders and retry, or build the
// tracker WithSnapshots so queries read published versions instead.
// Match with errors.Is.
var ErrQueryDuringIngest = errors.New("distwindow: query during ingest")

// ErrParallelUnsupported is returned (wrapped, with detail) by New when
// WithParallel is combined with a configuration the pipeline cannot run:
// a sampling-family protocol (their coordinator talks back to the sites, so
// ingestion cannot be split into independent site lanes), or tracing/audit
// instrumentation, which assumes the sequential path.
var ErrParallelUnsupported = errors.New("distwindow: parallel ingestion unsupported")
