package distwindow

import (
	"errors"
	"math/rand"
	"testing"

	"distwindow/internal/protocol"
	"distwindow/internal/stream"
	"distwindow/mat"
)

func TestTryObserveErrorPaths(t *testing.T) {
	newTr := func(maxSkew int64) *Tracker {
		tr, err := New(Config{Protocol: DA1, D: 2, W: 100, Eps: 0.2, Sites: 2, MaxSkew: maxSkew})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	cases := []struct {
		name string
		run  func(tr *Tracker) error
		skew int64
		want error
	}{
		{
			name: "site negative",
			run:  func(tr *Tracker) error { return tr.TryObserve(-1, Row{T: 1, V: []float64{1, 0}}) },
			want: ErrSiteRange,
		},
		{
			name: "site too large",
			run:  func(tr *Tracker) error { return tr.TryObserve(2, Row{T: 1, V: []float64{1, 0}}) },
			want: ErrSiteRange,
		},
		{
			name: "dimension short",
			run:  func(tr *Tracker) error { return tr.TryObserve(0, Row{T: 1, V: []float64{1}}) },
			want: ErrDimension,
		},
		{
			name: "dimension long",
			run:  func(tr *Tracker) error { return tr.TryObserve(0, Row{T: 1, V: []float64{1, 2, 3}}) },
			want: ErrDimension,
		},
		{
			name: "stale without skew",
			run: func(tr *Tracker) error {
				if err := tr.TryObserve(0, Row{T: 10, V: []float64{1, 0}}); err != nil {
					return err
				}
				return tr.TryObserve(1, Row{T: 9, V: []float64{1, 0}})
			},
			want: ErrStale,
		},
		{
			name: "stale after advance",
			run: func(tr *Tracker) error {
				tr.Advance(50)
				return tr.TryObserve(0, Row{T: 49, V: []float64{1, 0}})
			},
			want: ErrStale,
		},
		{
			name: "beyond skew horizon",
			skew: 5,
			run: func(tr *Tracker) error {
				if err := tr.TryObserve(0, Row{T: 100, V: []float64{1, 0}}); err != nil {
					return err
				}
				return tr.TryObserve(0, Row{T: 50, V: []float64{1, 0}})
			},
			want: ErrStale,
		},
		{
			name: "equal timestamp ok",
			run: func(tr *Tracker) error {
				if err := tr.TryObserve(0, Row{T: 10, V: []float64{1, 0}}); err != nil {
					return err
				}
				return tr.TryObserve(1, Row{T: 10, V: []float64{0, 1}})
			},
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run(newTr(tc.skew))
			if tc.want == nil {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestObservePanicsOnlyOnCallerBugs(t *testing.T) {
	tr, _ := New(Config{Protocol: DA1, D: 2, W: 100, Eps: 0.2, Sites: 1})
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("site", func() { tr.Observe(5, Row{T: 1, V: []float64{1, 0}}) })
	mustPanic("dim", func() { tr.Observe(0, Row{T: 1, V: []float64{1}}) })

	// Stale rows are dropped silently but counted.
	tr.Observe(0, Row{T: 10, V: []float64{1, 0}})
	tr.Observe(0, Row{T: 5, V: []float64{1, 0}}) // must not panic
	if got := tr.Metrics().StaleDrops; got != 1 {
		t.Fatalf("StaleDrops = %d, want 1", got)
	}
	if got := tr.Metrics().Rows; got != 1 {
		t.Fatalf("Rows = %d, want 1", got)
	}
}

func TestObserveBatch(t *testing.T) {
	tr, _ := New(Config{Protocol: DA1, D: 2, W: 100, Eps: 0.2, Sites: 1})
	rows := []Row{
		{T: 1, V: []float64{1, 0}},
		{T: 2, V: []float64{0, 1}},
		{T: 1, V: []float64{1, 1}}, // stale: skipped, not fatal
		{T: 3, V: []float64{1, 1}},
	}
	accepted, err := tr.ObserveBatch(0, rows)
	if err != nil {
		t.Fatal(err)
	}
	if accepted != 3 {
		t.Fatalf("accepted = %d, want 3", accepted)
	}
	if got := tr.Metrics().StaleDrops; got != 1 {
		t.Fatalf("StaleDrops = %d, want 1", got)
	}

	// A structural error aborts mid-batch and reports progress.
	bad := []Row{
		{T: 10, V: []float64{1, 0}},
		{T: 11, V: []float64{1}}, // wrong dimension
		{T: 12, V: []float64{0, 1}},
	}
	accepted, err = tr.ObserveBatch(0, bad)
	if !errors.Is(err, ErrDimension) {
		t.Fatalf("error = %v, want ErrDimension", err)
	}
	if accepted != 1 {
		t.Fatalf("accepted = %d, want 1", accepted)
	}

	if _, err := tr.ObserveBatch(9, rows); !errors.Is(err, ErrSiteRange) {
		t.Fatalf("error = %v, want ErrSiteRange", err)
	}
}

// TestObserveDoesNotRetainRow pins the aliasing contract: the tracker must
// copy anything it keeps, so callers can reuse the row buffer. A tracker
// fed through one mutated scratch slice must match one fed fresh slices.
func TestObserveDoesNotRetainRow(t *testing.T) {
	for _, p := range []Protocol{PWOR, ESWORAll, DA1, DA2, DA2C} {
		p := p
		t.Run(string(p), func(t *testing.T) {
			cfg := Config{Protocol: p, D: 3, W: 200, Eps: 0.2, Sites: 2, Seed: 7}
			ref, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			reuse, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(11))
			scratch := make([]float64, 3)
			for i := int64(1); i <= 400; i++ {
				v := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
				site := int(i) % 2
				ref.Observe(site, Row{T: i, V: v})

				copy(scratch, v)
				reuse.Observe(site, Row{T: i, V: scratch})
				// Clobber the buffer the way a reader loop would.
				scratch[0], scratch[1], scratch[2] = -1e9, 1e9, -1e9
			}
			if !ref.Sketch().Equal(reuse.Sketch()) {
				t.Fatal("sketch depends on the row buffer after Observe returned: a layer retained the caller's slice")
			}
		})
	}
}

// recordingTracker captures delivery order for white-box skew tests.
type recordingTracker struct {
	sites []int
	ts    []int64
}

func (r *recordingTracker) Observe(site int, row stream.Row) {
	r.sites = append(r.sites, site)
	r.ts = append(r.ts, row.T)
}
func (r *recordingTracker) AdvanceTime(int64)     {}
func (r *recordingTracker) Sketch() *mat.Dense    { return mat.NewDense(0, 1) }
func (r *recordingTracker) Stats() protocol.Stats { return protocol.Stats{} }
func (r *recordingTracker) Name() string          { return "recorder" }

func TestFlushSkewGlobalOrder(t *testing.T) {
	tr, err := New(Config{Protocol: DA1, D: 1, W: 1000, Eps: 0.2, Sites: 3, MaxSkew: 100})
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingTracker{}
	tr.inner = rec

	// Interleave buffered rows across sites so a per-site flush would
	// deliver out of global order: site 2 holds the oldest rows.
	tr.Observe(2, Row{T: 5, V: []float64{1}})
	tr.Observe(0, Row{T: 20, V: []float64{1}})
	tr.Observe(1, Row{T: 10, V: []float64{1}})
	tr.Observe(0, Row{T: 30, V: []float64{1}})
	tr.Observe(1, Row{T: 10, V: []float64{1}}) // tie with site 1's first row
	if len(rec.ts) != 0 {
		t.Fatalf("rows released early: %v", rec.ts)
	}

	tr.FlushSkew()
	wantTs := []int64{5, 10, 10, 20, 30}
	wantSites := []int{2, 1, 1, 0, 0}
	if len(rec.ts) != len(wantTs) {
		t.Fatalf("delivered %d rows, want %d", len(rec.ts), len(wantTs))
	}
	for i := range wantTs {
		if rec.ts[i] != wantTs[i] || rec.sites[i] != wantSites[i] {
			t.Fatalf("delivery[%d] = (site %d, t %d), want (site %d, t %d)",
				i, rec.sites[i], rec.ts[i], wantSites[i], wantTs[i])
		}
	}
	if tr.SkewDropped() != 0 {
		t.Fatalf("SkewDropped = %d, want 0", tr.SkewDropped())
	}
}

func TestFlushSkewDropsRowsBehindDeliveredClock(t *testing.T) {
	tr, err := New(Config{Protocol: DA1, D: 1, W: 1000, Eps: 0.2, Sites: 2, MaxSkew: 10})
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingTracker{}
	tr.inner = rec

	// Site 0 races ahead: its T=100 arrival releases rows up to T=90 and
	// commits the delivered clock there. Site 1's buffered T=50 row is
	// within its own skew bound but behind the global stream by flush time.
	tr.Observe(1, Row{T: 50, V: []float64{1}})
	tr.Observe(0, Row{T: 80, V: []float64{1}})
	tr.Observe(0, Row{T: 100, V: []float64{1}}) // releases T=80, delivered=80

	tr.FlushSkew()
	if tr.SkewDropped() != 1 {
		t.Fatalf("SkewDropped = %d, want 1 (site 1's T=50 fell behind)", tr.SkewDropped())
	}
	for _, ts := range rec.ts {
		if ts == 50 {
			t.Fatal("stale row was delivered to the protocol")
		}
	}
	// The surviving rows arrive in order.
	for i := 1; i < len(rec.ts); i++ {
		if rec.ts[i] < rec.ts[i-1] {
			t.Fatalf("non-monotonic delivery: %v", rec.ts)
		}
	}
}

func TestMetricsAndSink(t *testing.T) {
	tr, err := New(Config{Protocol: DA1, D: 2, W: 100, Eps: 0.2, Sites: 2})
	if err != nil {
		t.Fatal(err)
	}
	var sink CountingSink
	tr.SetSink(&sink)

	rng := rand.New(rand.NewSource(3))
	for i := int64(1); i <= 200; i++ {
		tr.Observe(int(i)%2, Row{T: i, V: []float64{rng.NormFloat64(), rng.NormFloat64()}})
	}
	tr.Sketch()

	m := tr.Metrics()
	if m.Protocol != "DA1" {
		t.Fatalf("Protocol = %q", m.Protocol)
	}
	if m.Rows != 200 {
		t.Fatalf("Rows = %d, want 200", m.Rows)
	}
	if m.Queries != 1 {
		t.Fatalf("Queries = %d, want 1", m.Queries)
	}
	if m.Net != tr.Stats() {
		t.Fatalf("Metrics.Net diverged from Stats: %+v vs %+v", m.Net, tr.Stats())
	}
	if len(m.Sites) != 2 {
		t.Fatalf("Sites = %d entries, want 2", len(m.Sites))
	}
	var upWords int64
	for _, s := range m.Sites {
		upWords += s.WordsUp
	}
	if upWords != m.Net.WordsUp {
		t.Fatalf("per-site words (%d) don't sum to the global counter (%d)", upWords, m.Net.WordsUp)
	}
	if m.LiveBuckets <= 0 {
		t.Fatalf("LiveBuckets = %d, want > 0 after 200 rows", m.LiveBuckets)
	}
	if m.UpdateLatency.Count == 0 {
		t.Fatal("no update latencies sampled over 200 rows")
	}

	if sink.Count(EvMsgSent) == 0 {
		t.Fatal("no EvMsgSent despite DA1 traffic")
	}
	if sink.Count(EvBucketCreated) == 0 {
		t.Fatal("no EvBucketCreated despite mEH inserts")
	}
	if sink.Count(EvSketchQuery) != 1 {
		t.Fatalf("EvSketchQuery = %d, want 1", sink.Count(EvSketchQuery))
	}
}

func TestAggregateTryObserve(t *testing.T) {
	tr, err := NewAggregate(Config{W: 100, Eps: 0.1, Sites: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.TryObserve(5, 1, 1); !errors.Is(err, ErrSiteRange) {
		t.Fatalf("error = %v, want ErrSiteRange", err)
	}
	if err := tr.TryObserve(0, 10, 2); err != nil {
		t.Fatal(err)
	}
	// Sites run independent clocks: site 1 may lag site 0.
	if err := tr.TryObserve(1, 5, 2); err != nil {
		t.Fatalf("independent site clock rejected: %v", err)
	}
	// But one site's clock must not run backwards.
	if err := tr.TryObserve(0, 9, 2); !errors.Is(err, ErrStale) {
		t.Fatalf("error = %v, want ErrStale", err)
	}
	// The stale weight was dropped, not applied.
	if got := tr.Estimate(); got != 4 {
		t.Fatalf("Estimate = %v, want 4", got)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("Observe with a bad site should panic")
		}
	}()
	tr.Observe(-1, 1, 1)
}
