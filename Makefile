# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-short race cover bench bench-json fuzz fuzz-smoke chaos fleet-smoke experiments examples fmt vet lint clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Skips the slow integration matrix and shape tests.
test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# One benchmark per paper table/figure (reduced scale) plus module
# micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Headline performance figures (ingest rate, words/window, sketch-query
# latency, the parallel pipeline's batch × workers scaling grid with its
# benchgate efficiency gate, the multi-stream registry streams × workers
# throughput grid with its falloff gate, the published-snapshot query
# path under concurrent queriers with its publish-overhead and
# interference gates, and the gob-vs-binary-v2 wire codec comparison) on
# a fixed reference workload, written as BENCH_PR10.json for machine
# comparison across changes.
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_PR10.json

# Short fuzz sessions over the invariant fuzz targets.
fuzz:
	$(GO) test -fuzz=FuzzHistogramInvariant -fuzztime=30s ./internal/eh/
	$(GO) test -fuzz=FuzzSketchGuarantee -fuzztime=30s ./internal/fd/
	$(GO) test -fuzz=FuzzSkewBufferOrdering -fuzztime=30s ./internal/stream/

# Short fuzz sessions over the binary v2 wire decoder: arbitrary bytes
# must never panic, never loop, and only ever fail with a frame-local
# CorruptFrameError or an EOF-shaped transport error. The CI fuzz job
# runs exactly this target.
fuzz-smoke:
	$(GO) test -fuzz=FuzzDecodeMsg -fuzztime=30s ./internal/wire/codec/
	$(GO) test -fuzz=FuzzDecodeAck -fuzztime=30s ./internal/wire/codec/

# Seeded chaos soak under the race detector: replays the same workload
# fault-free and under injected transport faults plus a site crash, and
# requires the coordinator's estimate to be bit-identical. The fault mix
# is seed-deterministic, so a failure here reproduces exactly.
chaos:
	$(GO) test -race -run Chaos -count=1 ./internal/wire/ ./internal/chaos/

# Fleet telemetry smoke: a telemetry-enabled coordinator, two
# chaos-injected sites ingesting while publishing telemetry frames over
# their wire connections, and a Prometheus-format scrape of /metrics
# validated by the in-repo exposition parser. The CI fleet job runs
# exactly this test.
fleet-smoke:
	$(GO) test -run TestFleetSmoke -count=1 -v ./internal/wire/

# Regenerate the paper's tables and figures (default scale, ~30 min).
experiments:
	$(GO) run ./cmd/trackbench -exp all -scale default -csv experiments.csv

# Render the panels from the experiments CSV as SVGs under figures/.
figures: experiments
	$(GO) run ./cmd/plotfig -in experiments.csv -out figures

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/netmon
	$(GO) run ./examples/changedetect
	$(GO) run ./examples/heavyhitters
	$(GO) run ./examples/anomaly

fmt:
	gofmt -w .

# CI's lint gate: formatting and vet, no writes.
lint:
	test -z "$$(gofmt -l .)"
	$(GO) vet ./...

vet:
	$(GO) vet ./...

clean:
	rm -f experiments.csv test_output.txt bench_output.txt
