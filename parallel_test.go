package distwindow_test

import (
	"errors"
	"math"
	"runtime"
	"sync"
	"testing"

	"distwindow"
)

// rowVal derives a deterministic row value from (site, seq, col) so the
// per-site feeder goroutines need no shared RNG.
func rowVal(site, seq, col int) float64 {
	x := uint64(site)*0x9e3779b97f4a7c15 + uint64(seq)*0x2545f4914f6cdd1d + uint64(col)*0xda3e39cb94b95bdb
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	// Map to [-1, 1) with a few distinct magnitudes so eigenvalue order
	// (and thus emission content) is data-dependent.
	return float64(int64(x%2048)-1024) / 1024
}

func makeRow(d, site, seq int) distwindow.Row {
	v := make([]float64, d)
	for j := range v {
		v[j] = rowVal(site, seq, j)
	}
	// Two rows share each timestamp per site, and timestamps tie across
	// sites, to stress the merge's (T, site) tie-break.
	return distwindow.Row{T: int64(seq / 2), V: v}
}

// feedSequential replays the exact global order the parallel merge
// guarantees: (T, site) lexicographic with per-site FIFO. At a tied
// timestamp both of site s's rows (two share each T) apply before site
// s+1's first, so the per-site pairs stay contiguous.
func feedSequential(t *testing.T, tr *distwindow.Tracker, sites, rowsPerSite, d int) {
	t.Helper()
	for base := 0; base < rowsPerSite; base += 2 {
		for s := 0; s < sites; s++ {
			for rep := 0; rep < 2 && base+rep < rowsPerSite; rep++ {
				if err := tr.TryObserve(s, makeRow(d, s, base+rep)); err != nil {
					t.Fatalf("sequential observe site %d seq %d: %v", s, base+rep, err)
				}
			}
		}
	}
}

func feedParallel(t *testing.T, tr *distwindow.Tracker, sites, rowsPerSite, d int) {
	t.Helper()
	var wg sync.WaitGroup
	for s := 0; s < sites; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for seq := 0; seq < rowsPerSite; seq++ {
				tr.TryObserve(s, makeRow(d, s, seq))
			}
		}(s)
	}
	wg.Wait()
}

// TestParallelDeterminism asserts the acceptance criterion: for every
// one-way protocol, the parallel pipeline's coordinator state is
// bit-for-bit identical to the sequential path fed in the merge's global
// (T, site) order — same floats, same operation order, not approximately.
func TestParallelDeterminism(t *testing.T) {
	const (
		d           = 6
		sites       = 5
		rowsPerSite = 600 // T reaches 299: several W=64 windows
	)
	for _, proto := range []distwindow.Protocol{distwindow.DA1, distwindow.DA2, distwindow.DA2C, distwindow.Decay} {
		t.Run(string(proto), func(t *testing.T) {
			cfg := distwindow.Config{
				Protocol: proto, D: d, W: 64, Eps: 0.2, Sites: sites, Seed: 7, DecayGamma: 0.99,
			}
			seq, err := distwindow.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			par, err := distwindow.New(cfg, distwindow.WithParallel(4), distwindow.WithRingSize(32))
			if err != nil {
				t.Fatal(err)
			}
			defer par.Close()

			feedSequential(t, seq, sites, rowsPerSite, d)
			feedParallel(t, par, sites, rowsPerSite, d)
			par.Drain()

			gs, ok := seq.SketchGram()
			if !ok {
				t.Fatalf("%s: no SketchGram", proto)
			}
			gp, _ := par.SketchGram()
			if !gs.Equal(gp) {
				t.Fatalf("%s: parallel Gram differs from sequential", proto)
			}
			// The factored sketch is a deterministic function of the Gram,
			// but check it end to end anyway.
			if !seq.Sketch().Equal(par.Sketch()) {
				t.Fatalf("%s: parallel Sketch differs from sequential", proto)
			}
			sm, pm := seq.Metrics(), par.Metrics()
			if sm.Rows != pm.Rows {
				t.Fatalf("%s: rows %d vs %d", proto, sm.Rows, pm.Rows)
			}
			if sm.Net.WordsUp != pm.Net.WordsUp {
				t.Fatalf("%s: words up %d vs %d", proto, sm.Net.WordsUp, pm.Net.WordsUp)
			}
		})
	}
}

// feedParallelBatched feeds per-site streams through ObserveBatch in runs
// of batch rows, reusing one staging slice per feeder the way a real
// batched producer would.
func feedParallelBatched(t *testing.T, tr *distwindow.Tracker, sites, rowsPerSite, d, batch int) {
	t.Helper()
	var wg sync.WaitGroup
	for s := 0; s < sites; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			buf := make([]distwindow.Row, 0, batch)
			for seq := 0; seq < rowsPerSite; {
				buf = buf[:0]
				for len(buf) < batch && seq < rowsPerSite {
					buf = append(buf, makeRow(d, s, seq))
					seq++
				}
				if n, err := tr.ObserveBatch(s, buf); err != nil || n != len(buf) {
					t.Errorf("site %d: ObserveBatch accepted %d/%d, err %v", s, n, len(buf), err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
}

// TestParallelDeterminismBatched is the batched-ingest property test: for
// every one-way protocol, batched-parallel output must be bit-identical to
// the sequential reference across batch sizes (1, a prime that misaligns
// with block boundaries, the block size, and the whole ring) and worker
// counts (1, 2, NumCPU). Batch size may change block boundaries, wakeup
// patterns and release timing — never the applied operation sequence.
func TestParallelDeterminismBatched(t *testing.T) {
	const (
		d           = 6
		sites       = 5
		rowsPerSite = 600
		ring        = 32
	)
	batches := []int{1, 7, 64, ring * 64} // ring*MaxBlock: fills every slot
	workerCounts := []int{1, 2}
	if n := runtime.NumCPU(); n != 1 && n != 2 {
		workerCounts = append(workerCounts, n)
	}
	if testing.Short() {
		batches = []int{7, 64}
		workerCounts = []int{2}
	}
	for _, proto := range []distwindow.Protocol{distwindow.DA1, distwindow.DA2, distwindow.DA2C, distwindow.Decay} {
		t.Run(string(proto), func(t *testing.T) {
			cfg := distwindow.Config{
				Protocol: proto, D: d, W: 64, Eps: 0.2, Sites: sites, Seed: 7, DecayGamma: 0.99,
			}
			seq, err := distwindow.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			feedSequential(t, seq, sites, rowsPerSite, d)
			gs, ok := seq.SketchGram()
			if !ok {
				t.Fatalf("%s: no SketchGram", proto)
			}
			sm := seq.Metrics()

			for _, workers := range workerCounts {
				for _, batch := range batches {
					par, err := distwindow.New(cfg, distwindow.WithParallel(workers), distwindow.WithRingSize(ring))
					if err != nil {
						t.Fatal(err)
					}
					feedParallelBatched(t, par, sites, rowsPerSite, d, batch)
					par.Drain()
					gp, _ := par.SketchGram()
					if !gs.Equal(gp) {
						t.Errorf("%s workers=%d batch=%d: Gram differs from sequential", proto, workers, batch)
					}
					if !seq.Sketch().Equal(par.Sketch()) {
						t.Errorf("%s workers=%d batch=%d: Sketch differs from sequential", proto, workers, batch)
					}
					pm := par.Metrics()
					if sm.Rows != pm.Rows || sm.Net.WordsUp != pm.Net.WordsUp {
						t.Errorf("%s workers=%d batch=%d: rows %d vs %d, words up %d vs %d",
							proto, workers, batch, sm.Rows, pm.Rows, sm.Net.WordsUp, pm.Net.WordsUp)
					}
					par.Close()
				}
			}
		})
	}
}

// TestParallelDeterminismSkew feeds each site a bounded-out-of-order
// stream through the reorder buffers. Per site, the buffer releases rows
// in sorted order — the same per-site sequence the in-order sequential
// tracker sees — so after FlushSkew the states must again be identical.
// Timestamps are strictly increasing per site (the reorder heap is not
// stable for within-site ties) but still tie across sites, exercising the
// merge's site tie-break.
func TestParallelDeterminismSkew(t *testing.T) {
	const (
		d           = 4
		sites       = 3
		rowsPerSite = 300
		skew        = 8
	)
	mk := func(s, seq int) distwindow.Row {
		r := makeRow(d, s, seq)
		r.T = int64(seq)
		return r
	}
	cfg := distwindow.Config{Protocol: distwindow.DA1, D: d, W: 50, Eps: 0.2, Sites: sites}
	seq, err := distwindow.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MaxSkew = skew
	par, err := distwindow.New(cfg, distwindow.WithParallel(2))
	if err != nil {
		t.Fatal(err)
	}
	defer par.Close()

	// Sequential reference: strictly in order, no skew machinery; at each
	// tick all sites tie and apply in site order, matching the merge.
	for i := 0; i < rowsPerSite; i++ {
		for s := 0; s < sites; s++ {
			if err := seq.TryObserve(s, mk(s, i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Parallel: swap adjacent pairs (displacement 2 < skew) per site.
	var wg sync.WaitGroup
	for s := 0; s < sites; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < rowsPerSite; i += 4 {
				for _, j := range []int{i + 2, i, i + 3, i + 1} {
					if j < rowsPerSite {
						par.TryObserve(s, mk(s, j))
					}
				}
			}
		}(s)
	}
	wg.Wait()
	par.FlushSkew()

	if dropped := par.Metrics().SkewDropped; dropped != 0 {
		t.Fatalf("unexpected skew drops: %d", dropped)
	}
	gs, _ := seq.SketchGram()
	gp, _ := par.SketchGram()
	if !gs.Equal(gp) {
		t.Fatal("parallel Gram with skew reordering differs from in-order sequential")
	}
}

// TestParallelDeterminismSkewBatched drives the skew-replay path through
// ObserveBatch: batches carry out-of-order rows (displacement 2, within the
// skew horizon), so single blocks deliver into the reorder buffer and its
// releases — not arrival order — feed the protocol. Output must still match
// the in-order sequential reference for every batch size.
func TestParallelDeterminismSkewBatched(t *testing.T) {
	const (
		d           = 4
		sites       = 3
		rowsPerSite = 300
		skew        = 8
		ring        = 32
	)
	mk := func(s, seq int) distwindow.Row {
		r := makeRow(d, s, seq)
		r.T = int64(seq)
		return r
	}
	cfg := distwindow.Config{Protocol: distwindow.DA1, D: d, W: 50, Eps: 0.2, Sites: sites}
	seq, err := distwindow.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rowsPerSite; i++ {
		for s := 0; s < sites; s++ {
			if err := seq.TryObserve(s, mk(s, i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	gs, _ := seq.SketchGram()

	for _, batch := range []int{1, 7, 64, ring * 64} {
		cfgSkew := cfg
		cfgSkew.MaxSkew = skew
		par, err := distwindow.New(cfgSkew, distwindow.WithParallel(2), distwindow.WithRingSize(ring))
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for s := 0; s < sites; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				buf := make([]distwindow.Row, 0, batch)
				flush := func() {
					if len(buf) == 0 {
						return
					}
					if _, err := par.ObserveBatch(s, buf); err != nil {
						t.Errorf("site %d: %v", s, err)
					}
					buf = buf[:0]
				}
				for i := 0; i < rowsPerSite; i += 4 {
					for _, j := range []int{i + 2, i, i + 3, i + 1} {
						if j < rowsPerSite {
							buf = append(buf, mk(s, j))
							if len(buf) == batch {
								flush()
							}
						}
					}
				}
				flush()
			}(s)
		}
		wg.Wait()
		par.FlushSkew()
		if dropped := par.Metrics().SkewDropped; dropped != 0 {
			t.Errorf("batch=%d: unexpected skew drops: %d", batch, dropped)
		}
		gp, _ := par.SketchGram()
		if !gs.Equal(gp) {
			t.Errorf("batch=%d: batched skew-replay Gram differs from sequential", batch)
		}
		par.Close()
	}
}

// TestParallelStress is the -race workout: concurrent per-site feeders,
// a metrics scraper, and repeated drains, on every pipeline-capable
// protocol shape (with and without skew buffers).
func TestParallelStress(t *testing.T) {
	const (
		d           = 4
		sites       = 8
		rowsPerSite = 1500
	)
	for _, maxSkew := range []int64{0, 4} {
		cfg := distwindow.Config{
			Protocol: distwindow.DA2, D: d, W: 40, Eps: 0.25, Sites: sites, MaxSkew: maxSkew,
		}
		tr, err := distwindow.New(cfg, distwindow.WithParallel(0), distwindow.WithRingSize(16))
		if err != nil {
			t.Fatal(err)
		}

		stop := make(chan struct{})
		var scraper sync.WaitGroup
		scraper.Add(1)
		go func() {
			defer scraper.Done()
			for {
				select {
				case <-stop:
					return
				default:
					m := tr.Metrics()
					_ = m.Net.TotalWords()
					_ = tr.Stats()
				}
			}
		}()

		var wg sync.WaitGroup
		for s := 0; s < sites; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				for seq := 0; seq < rowsPerSite; seq++ {
					if err := tr.TryObserve(s, makeRow(d, s, seq)); err != nil {
						t.Errorf("site %d: %v", s, err)
						return
					}
				}
			}(s)
		}
		wg.Wait()
		tr.FlushSkew()
		tr.Advance(int64(rowsPerSite/2 + 10))
		if b := tr.Sketch(); b.Cols() != d {
			t.Fatalf("sketch cols = %d, want %d", b.Cols(), d)
		}
		close(stop)
		scraper.Wait()

		if m := tr.Metrics(); m.Rows != sites*rowsPerSite {
			t.Fatalf("maxSkew=%d: rows %d, want %d (stale %d, skew %d)",
				maxSkew, m.Rows, sites*rowsPerSite, m.StaleDrops, m.SkewDropped)
		}
		tr.Close()
		tr.Close() // idempotent
	}
}

// TestParallelStaleCountedNotReturned checks the documented parallel-mode
// semantics: an out-of-order row (no skew buffer) is dropped on the
// worker and surfaces in Metrics, and TryObserve itself stays error-free.
func TestParallelStaleCountedNotReturned(t *testing.T) {
	cfg := distwindow.Config{Protocol: distwindow.DA1, D: 2, W: 100, Eps: 0.3, Sites: 1}
	tr, err := distwindow.New(cfg, distwindow.WithParallel(1))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.TryObserve(0, distwindow.Row{T: 10, V: []float64{1, 0}}); err != nil {
		t.Fatal(err)
	}
	if err := tr.TryObserve(0, distwindow.Row{T: 5, V: []float64{0, 1}}); err != nil {
		t.Fatalf("stale row returned error in parallel mode: %v", err)
	}
	tr.Drain()
	m := tr.Metrics()
	if m.StaleDrops != 1 || m.Rows != 1 {
		t.Fatalf("stale=%d rows=%d, want 1 and 1", m.StaleDrops, m.Rows)
	}
	// Structural errors are still synchronous.
	if err := tr.TryObserve(3, distwindow.Row{T: 11, V: []float64{1, 0}}); !errors.Is(err, distwindow.ErrSiteRange) {
		t.Fatalf("bad site: got %v", err)
	}
	if err := tr.TryObserve(0, distwindow.Row{T: 11, V: []float64{1}}); !errors.Is(err, distwindow.ErrDimension) {
		t.Fatalf("bad dimension: got %v", err)
	}
}

// TestParallelDecayAdvance pins the decay tracker's parallel clock
// contract: after Advance(now) and a drain, the coordinator has decayed
// to now exactly as the sequential tracker has.
func TestParallelDecayAdvance(t *testing.T) {
	cfg := distwindow.Config{Protocol: distwindow.Decay, D: 3, Eps: 0.2, Sites: 2, DecayGamma: 0.95}
	seq, err := distwindow.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := distwindow.New(cfg, distwindow.WithParallel(2))
	if err != nil {
		t.Fatal(err)
	}
	defer par.Close()
	feedSequential(t, seq, 2, 40, 3)
	for s := 0; s < 2; s++ {
		for i := 0; i < 40; i++ {
			par.TryObserve(s, makeRow(3, s, i))
		}
	}
	seq.Advance(60)
	par.Advance(60)
	gs, _ := seq.SketchGram()
	gp, _ := par.SketchGram()
	if !gs.Equal(gp) {
		t.Fatal("decayed Grams differ after Advance")
	}
	if gs.At(0, 0) == 0 || math.IsNaN(gs.At(0, 0)) {
		t.Fatalf("degenerate gram: %v", gs.At(0, 0))
	}
}
