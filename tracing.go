package distwindow

import (
	"fmt"
	"net/http"

	"distwindow/internal/audit"
	"distwindow/internal/core"
	"distwindow/internal/obs"
	"distwindow/internal/trace"
)

// TraceConfig configures causal tracing on a Tracker.
type TraceConfig struct {
	// SampleEvery is the head-based sampling rate: one trace per
	// SampleEvery ingested rows (1 traces every row; 0 disables tracing).
	// The decision is taken once at the ingest root and inherited by every
	// downstream span — a sampled ingest yields sampled bucket, send and
	// apply spans.
	SampleEvery int
	// RingSize bounds the retained completed spans (rounded up to a power
	// of two; 0 means trace.DefaultRingSize). Old spans are overwritten.
	RingSize int
}

// EnableTracing installs span-based causal tracing: each sampled row's
// journey (ingest → bucket create/merge/expire → send → recv → query) is
// recorded into a bounded lock-free ring and exportable as Chrome
// trace-event JSON via TraceChrome or the /debug/trace endpoint mounted
// by MetricsHandler. SampleEvery ≤ 0 uninstalls tracing.
//
// Call before feeding data, from the ingest goroutine — the tracer fields
// are read without synchronization on the hot path, like SetSink's.
// Disabled or uninstalled tracing costs one nil-check per hook site.
// Ignored (no-op) on a parallel tracker: the pipeline rejects tracing at
// construction and cannot adopt it later.
//
// Deprecated: pass WithTracing to New, which installs the tracer before
// any row can arrive and lets construction reject unsupported
// combinations (WithParallel) instead of silently ignoring them.
func (t *Tracker) EnableTracing(cfg TraceConfig) {
	if t.pipe != nil {
		return
	}
	var tr *trace.Tracer
	var ring *trace.Ring
	if cfg.SampleEvery > 0 {
		ring = trace.NewRing(cfg.RingSize)
		tr = trace.New(ring, cfg.SampleEvery)
	}
	t.tracer, t.traceRing = tr, ring
	t.net.SetTracer(tr)
	if ts, ok := t.inner.(core.TracerSetter); ok {
		ts.SetTracer(tr)
	}
}

// TracingEnabled reports whether EnableTracing installed a live tracer.
func (t *Tracker) TracingEnabled() bool { return t.tracer.Enabled() }

// TraceSpans returns how many spans have been recorded so far (spans older
// than the ring capacity have been overwritten). 0 when tracing is off.
func (t *Tracker) TraceSpans() int64 {
	if t.traceRing == nil {
		return 0
	}
	return t.traceRing.Recorded()
}

// TraceChrome exports the retained spans as Chrome trace-event JSON,
// loadable in Perfetto or chrome://tracing. It is safe to call while the
// tracker ingests.
func (t *Tracker) TraceChrome() ([]byte, error) {
	if t.traceRing == nil {
		return nil, fmt.Errorf("distwindow: tracing not enabled")
	}
	return t.traceRing.ChromeTrace()
}

// TraceHandler serves the Chrome trace export over HTTP (the same handler
// MetricsHandler mounts at /debug/trace). With tracing disabled it serves
// 404.
func (t *Tracker) TraceHandler() http.Handler {
	if t.traceRing == nil {
		return http.NotFoundHandler()
	}
	return t.traceRing.Handler()
}

// AuditConfig configures the live ε-error auditor.
type AuditConfig struct {
	// EveryRows is the audit cadence: one error measurement per EveryRows
	// ingested rows (default 512).
	EveryRows int
	// KeepSamples bounds the measurement history retained for the
	// /debug/audit panel (default 512).
	KeepSamples int
}

// AuditMetrics is a snapshot of the auditor's counters (see
// Metrics.Audit).
type AuditMetrics = audit.Metrics

// AuditSample is one audit measurement (see Tracker.AuditSamples).
type AuditSample = audit.Sample

// EnableAudit installs a live ε-error auditor: a shadow path keeping the
// exact windowed covariance next to the protocol and periodically
// measuring the observed err(A_w, B) against the configured ε, together
// with the communication spent per window. Results surface through
// Metrics().Audit, AuditSamples, and the /debug/audit SVG panel mounted
// by MetricsHandler.
//
// The shadow window costs O(window·d) memory and an O(d²) Gram update per
// row — the very costs the protocols exist to avoid — so enable it on
// canaries and soak tests, not on every production instance. Call before
// feeding data, from the ingest goroutine. On a parallel tracker it fails
// with ErrParallelUnsupported: the shadow path rides the sequential
// ingest hook.
//
// Deprecated: pass WithAudit to New, which installs the auditor before
// any row can arrive.
func (t *Tracker) EnableAudit(cfg AuditConfig) error {
	if t.pipe != nil {
		return fmt.Errorf("%w: auditing requires the sequential path", ErrParallelUnsupported)
	}
	acfg := audit.Config{
		D:           t.cfg.D,
		W:           t.cfg.W,
		Eps:         t.cfg.Eps,
		EveryRows:   cfg.EveryRows,
		KeepSamples: cfg.KeepSamples,
		Words:       func() int64 { return t.net.Stats().TotalWords() },
	}
	if g, ok := t.inner.(GramSketcher); ok {
		acfg.Gram = g.SketchGram
	} else {
		acfg.Sketch = t.inner.Sketch
	}
	a, err := audit.New(acfg)
	if err != nil {
		return err
	}
	t.aud = a
	return nil
}

// AuditEnabled reports whether EnableAudit installed an auditor.
func (t *Tracker) AuditEnabled() bool { return t.aud != nil }

// Audit returns the auditor's counter snapshot; ok is false when
// EnableAudit was never called.
func (t *Tracker) Audit() (m AuditMetrics, ok bool) {
	if t.aud == nil {
		return AuditMetrics{}, false
	}
	return t.aud.Metrics(), true
}

// AuditSamples returns the retained audit measurement history, oldest
// first (nil when auditing is off).
func (t *Tracker) AuditSamples() []AuditSample {
	if t.aud == nil {
		return nil
	}
	return t.aud.Samples()
}

// AuditHandler serves the /debug/audit SVG error panel (the same handler
// MetricsHandler mounts). With auditing disabled it serves 404.
func (t *Tracker) AuditHandler() http.Handler {
	if t.aud == nil {
		return http.NotFoundHandler()
	}
	return t.aud.Handler()
}

// AuditTick forces an audit measurement now (instead of waiting for the
// row cadence) and returns it; ok is false when auditing is off.
func (t *Tracker) AuditTick() (s AuditSample, ok bool) {
	if t.aud == nil {
		return AuditSample{}, false
	}
	return t.aud.Tick(), true
}

// MuxOption customizes the mux returned by MetricsHandler (and the other
// obs muxes); see WithPprof and WithHandler.
type MuxOption = obs.MuxOption

// WithPprof mounts net/http/pprof's profiling endpoints under
// /debug/pprof/ — opt-in because profiling endpoints on an operations
// port are a policy decision.
func WithPprof() MuxOption { return obs.WithPprof() }

// WithHandler mounts an extra handler at the given pattern.
func WithHandler(pattern string, h http.Handler) MuxOption { return obs.WithHandler(pattern, h) }
