package distwindow

import (
	"math"
	"math/rand"
	"testing"
)

func TestFacadeFrequency(t *testing.T) {
	ft, err := NewFrequency(Config{W: 1000, Eps: 0.1, Sites: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := int64(1); i <= 3000; i++ {
		x := int64(rng.Intn(3)) // items 0,1,2 ≈ uniform
		ft.Observe(rng.Intn(3), i, x)
	}
	n := ft.Total()
	if math.Abs(n-1000) > 200 {
		t.Fatalf("Total = %v, want ≈1000", n)
	}
	for x := int64(0); x < 3; x++ {
		if f := ft.Estimate(x); math.Abs(f-n/3) > 0.25*n {
			t.Fatalf("Estimate(%d) = %v, want ≈%v", x, f, n/3)
		}
	}
	top := ft.TopK(3)
	if len(top) != 3 {
		t.Fatalf("TopK = %+v", top)
	}
	if ft.Stats().WordsUp == 0 {
		t.Fatal("no communication recorded")
	}
}

func TestFacadeFrequencyHeavyHitter(t *testing.T) {
	ft, _ := NewFrequency(Config{W: 100_000, Eps: 0.05, Sites: 2})
	rng := rand.New(rand.NewSource(2))
	for i := int64(1); i <= 2000; i++ {
		x := int64(rng.Intn(100))
		if i%2 == 0 {
			x = 42 // item 42 takes half the stream
		}
		ft.Observe(rng.Intn(2), i, x)
	}
	top := ft.TopK(1)
	if len(top) == 0 || top[0].Item != 42 {
		t.Fatalf("TopK(1) = %+v, want item 42", top)
	}
}

func TestFacadeQuantile(t *testing.T) {
	qt, err := NewQuantile(Config{W: 100_000, Eps: 0.1, Sites: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := int64(1); i <= 4000; i++ {
		qt.Observe(rng.Intn(2), i, rng.Float64())
	}
	if q := qt.Quantile(0.5); math.Abs(q-0.5) > 0.3 {
		t.Fatalf("median = %v", q)
	}
	if r := qt.Rank(0.25); math.Abs(r-1000) > 500 {
		t.Fatalf("Rank(0.25) = %v, want ≈1000", r)
	}
	if qt.Stats().WordsUp == 0 {
		t.Fatal("no communication recorded")
	}
}

func TestFacadeAggregatesValidation(t *testing.T) {
	if _, err := NewFrequency(Config{W: 10, Eps: 0.1, Sites: 0}); err == nil {
		t.Fatal("want error for Sites=0")
	}
	if _, err := NewQuantile(Config{W: 0, Eps: 0.1, Sites: 1}); err == nil {
		t.Fatal("want error for W=0")
	}
}
