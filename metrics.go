package distwindow

import (
	"io"
	"net/http"

	"distwindow/internal/core"
	"distwindow/internal/obs"
	"distwindow/internal/obs/telemetry"
	"distwindow/internal/protocol"
)

// The observability vocabulary is defined in the internal obs package and
// re-exported here so callers never import internals. A Sink receives one
// typed Event per internal occurrence; install it with Tracker.SetSink.
// The default (no sink) costs one nil-check per hook site.
type (
	// Sink receives internal events. Implementations must be fast and must
	// not call back into the tracker; they may be invoked from the ingest
	// hot path.
	Sink = obs.Sink
	// Event is one internal occurrence; see the Ev* constants for kinds.
	Event = obs.Event
	// EventKind enumerates the event types.
	EventKind = obs.EventKind
	// FuncSink adapts a function to the Sink interface.
	FuncSink = obs.FuncSink
	// CountingSink counts events by kind, atomically; useful in tests and
	// as a cheap always-on tally.
	CountingSink = obs.CountingSink
	// MultiSink fans events out to several sinks.
	MultiSink = obs.MultiSink
	// LatencySnapshot is a point-in-time copy of a latency histogram.
	LatencySnapshot = obs.HistSnapshot
	// SiteStats is one site's slice of the communication counters.
	SiteStats = protocol.SiteStats
)

// Event kinds observable through a Sink.
const (
	// EvMsgSent is a site→coordinator message (Words carries its size).
	EvMsgSent = obs.EvMsgSent
	// EvMsgReceived is a coordinator→site message.
	EvMsgReceived = obs.EvMsgReceived
	// EvBucketCreated is a new histogram bucket at a site.
	EvBucketCreated = obs.EvBucketCreated
	// EvBucketMerged is a compaction pass that absorbed N buckets.
	EvBucketMerged = obs.EvBucketMerged
	// EvBucketExpired is N buckets sliding out of the window.
	EvBucketExpired = obs.EvBucketExpired
	// EvSketchQuery is a coordinator sketch query (Sketch/SketchGram).
	EvSketchQuery = obs.EvSketchQuery
	// EvSkewDrop is a row dropped for arriving too late.
	EvSkewDrop = obs.EvSkewDrop
	// EvThresholdRenegotiation is a coordinator broadcast (sampling-family
	// threshold updates).
	EvThresholdRenegotiation = obs.EvThresholdRenegotiation
)

// Metrics is a point-in-time snapshot of a Tracker's observable state:
// ingest counters, the sampled update-latency histogram, and the
// communication counters (globally and per site). The communication
// figures are read from the same atomic counters Stats() reports — the
// paper's word accounting and the metrics layer cannot disagree.
type Metrics struct {
	// Protocol is the tracker's display name.
	Protocol string
	// Rows counts rows delivered into the protocol.
	Rows int64
	// StaleDrops counts rows rejected for out-of-order timestamps
	// (without MaxSkew).
	StaleDrops int64
	// SkewDropped counts rows dropped by the skew machinery (beyond the
	// horizon, or released too late to deliver in order).
	SkewDropped int64
	// Queries counts coordinator sketch queries.
	Queries int64
	// LiveBuckets is the latest sampled total histogram bucket count
	// across sites (0 for protocols without histograms).
	LiveBuckets int64
	// UpdateLatency is the sampled per-row protocol update latency (about
	// one row in 16 is timed).
	UpdateLatency LatencySnapshot
	// Net is the communication/space counter snapshot, identical to
	// Stats().
	Net Stats
	// Sites is the per-site communication breakdown, indexed by site.
	Sites []SiteStats
	// Audit is the live ε-error auditor's snapshot; nil unless
	// Tracker.EnableAudit was called.
	Audit *AuditMetrics `json:",omitempty"`
	// TraceSpans is the number of causal-trace spans recorded so far
	// (0 unless Tracker.EnableTracing was called).
	TraceSpans int64 `json:",omitempty"`
	// SnapshotVersion is the latest published snapshot's version; 0 when
	// no snapshot has been published (see WithSnapshots).
	SnapshotVersion uint64 `json:",omitempty"`
	// SnapshotPublishes counts snapshot publications.
	SnapshotPublishes int64 `json:",omitempty"`
	// SnapshotLagRows is the number of rows delivered since the latest
	// snapshot was taken — the read path's staleness in rows (approximate
	// in parallel mode, where rows are counted at the sites).
	SnapshotLagRows int64 `json:",omitempty"`
}

// Metrics returns a snapshot of the tracker's counters. It is safe to call
// from another goroutine while the tracker ingests.
func (t *Tracker) Metrics() Metrics {
	m := Metrics{
		Protocol:      t.inner.Name(),
		Rows:          t.rows.Load(),
		StaleDrops:    t.staleDrops.Load(),
		SkewDropped:   t.skewDropped.Load(),
		Queries:       t.queries.Load(),
		LiveBuckets:   t.liveBuckets.Load(),
		UpdateLatency: t.updateLat.Snapshot(),
		Net:           t.net.Stats(),
		Sites:         t.net.PerSiteStats(),
		TraceSpans:    t.TraceSpans(),
	}
	if t.aud != nil {
		am := t.aud.Metrics()
		m.Audit = &am
	}
	if s := t.snap.Load(); s != nil {
		m.SnapshotVersion = s.version
		m.SnapshotPublishes = t.snapPubs.Load()
		if lag := m.Rows - s.rows; lag > 0 {
			m.SnapshotLagRows = lag
		}
	}
	return m
}

// SetSink installs an event sink receiving the tracker's typed events:
// message traffic, bucket lifecycle, skew drops, sketch queries and
// threshold renegotiations (nil uninstalls). Install it before feeding
// data — the sink fields are read without synchronization on the hot path.
//
// Deprecated: pass WithSink to New, which wires the sink before any row
// can arrive. SetSink remains for trackers rebuilt via Restore and for
// uninstalling.
func (t *Tracker) SetSink(s Sink) {
	t.sink = s
	t.net.SetSink(s)
	if ss, ok := t.inner.(core.SinkSetter); ok {
		ss.SetSink(s)
	}
}

// MetricsHandler returns an http.Handler serving the tracker's snapshot:
// GET /metrics (JSON Metrics by default; the Prometheus text exposition
// when the request's Accept header prefers text/plain or ?format=prom
// asks for it), GET /healthz, and expvar under /debug/vars.
// When tracing or auditing is enabled (EnableTracing, EnableAudit) it also
// mounts /debug/trace (Chrome trace-event JSON) and /debug/audit (SVG
// error panel); further endpoints can be added with options (WithPprof,
// WithHandler). Mount it on any mux; the handler snapshots atomically, so
// it is safe while the tracker ingests on another goroutine.
func (t *Tracker) MetricsHandler(opts ...MuxOption) http.Handler {
	all := make([]obs.MuxOption, 0, len(opts)+3)
	all = append(all, obs.WithPrometheus(t.WritePrometheusTo))
	if t.traceRing != nil {
		all = append(all, obs.WithHandler("/debug/trace", t.traceRing.Handler()))
	}
	if t.aud != nil {
		all = append(all, obs.WithHandler("/debug/audit", t.aud.Handler()))
	}
	all = append(all, opts...)
	return obs.Mux(
		func() (any, bool) { return t.Metrics(), true },
		func() bool { return true },
		all...,
	)
}

// WritePrometheusTo writes the tracker's metrics in the Prometheus text
// exposition format (text/plain; version=0.0.4) — the format
// MetricsHandler serves to scrapers via content negotiation.
func (t *Tracker) WritePrometheusTo(w io.Writer) error {
	pw := obs.NewPromWriter(w)
	m := t.Metrics()
	ls := []obs.Label{{Name: "protocol", Value: m.Protocol}}
	pw.Counter("distwindow_rows_total", "Rows delivered into the protocol.", ls, float64(m.Rows))
	pw.Counter("distwindow_stale_drops_total", "Rows rejected for out-of-order timestamps.", ls, float64(m.StaleDrops))
	pw.Counter("distwindow_skew_drops_total", "Rows dropped by the skew machinery.", ls, float64(m.SkewDropped))
	pw.Counter("distwindow_queries_total", "Coordinator sketch queries.", ls, float64(m.Queries))
	pw.Gauge("distwindow_live_buckets", "Sampled total histogram bucket count across sites.", ls, float64(m.LiveBuckets))
	pw.Counter("distwindow_words_up_total", "Words sent from sites to the coordinator.", ls, float64(m.Net.WordsUp))
	pw.Counter("distwindow_words_down_total", "Words sent from the coordinator to sites.", ls, float64(m.Net.WordsDown))
	pw.Gauge("distwindow_max_site_words", "Maximum words of state held by any site.", ls, float64(m.Net.MaxSiteWords))
	pw.Histogram("distwindow_update_latency_seconds", "Sampled per-row update latency.", ls, m.UpdateLatency)
	if m.SnapshotVersion > 0 {
		pw.Gauge("distwindow_snapshot_version", "Latest published sketch snapshot version.", ls, float64(m.SnapshotVersion))
		pw.Counter("distwindow_snapshot_publishes_total", "Sketch snapshot publications.", ls, float64(m.SnapshotPublishes))
		pw.Gauge("distwindow_snapshot_lag_rows", "Rows delivered since the latest snapshot.", ls, float64(m.SnapshotLagRows))
	}
	if m.Audit != nil {
		pw.Gauge("distwindow_epsilon", "Configured error budget ε.", ls, m.Audit.Eps)
		pw.Gauge("distwindow_epsilon_error", "Latest audited covariance error.", ls, m.Audit.LastErr)
		pw.Gauge("distwindow_epsilon_headroom", "ε minus the latest audited error.", ls, m.Audit.Headroom)
		pw.Gauge("distwindow_words_per_window", "Latest communication-per-window figure.", ls, m.Audit.WordsPerWindow)
		pw.Counter("distwindow_epsilon_violations_total", "Audit ticks whose error exceeded ε.", ls, float64(m.Audit.Violations))
	}
	return pw.Err()
}

// TelemetryFrame snapshots the tracker as a fleet telemetry frame for
// site and stream — the collect seam for telemetry publishers in
// single-binary deployments (sketchd -serve) and for the coordinator
// process publishing its own local series into the fleet it aggregates.
func (t *Tracker) TelemetryFrame(site int, stream string) telemetry.Frame {
	m := t.Metrics()
	fr := telemetry.Frame{
		Site:      site,
		Stream:    stream,
		Proto:     m.Protocol,
		Rows:      m.Rows,
		Msgs:      m.Net.MsgsUp,
		Words:     m.Net.WordsUp,
		UpdateLat: m.UpdateLatency,
	}
	if m.Audit != nil {
		fr.Eps = m.Audit.Eps
		fr.Err = m.Audit.LastErr
		fr.Headroom = m.Audit.Headroom
		fr.WordsPerWindow = m.Audit.WordsPerWindow
		fr.Violations = m.Audit.Violations
	}
	return fr
}

// PublishExpvar publishes the tracker's Metrics snapshot as an expvar
// variable with the given name (served at /debug/vars). It reports false
// when the name is already taken — expvar names are process-global, so
// republishing under a fixed name after rebuilding a tracker needs a fresh
// name or a process restart.
func (t *Tracker) PublishExpvar(name string) bool {
	return obs.PublishExpvar(name, func() any { return t.Metrics() })
}
