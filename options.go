package distwindow

import "distwindow/internal/core"

// options collects the construction-time settings applied by New.
type options struct {
	parallel  bool
	workers   int
	ringSize  int
	sink      Sink
	haveSink  bool
	tracing   *TraceConfig
	audit     *AuditConfig
	snapshots bool
	snapEvery int
	// pools shares workspace/mEH storage across trackers; set only by the
	// Registry (withPools) — sharing is an ownership contract the registry
	// manages, not something callers opt into per tracker.
	pools core.Pools
}

// buildOptions folds an option list into its settings struct.
func buildOptions(opts []Option) *options {
	o := &options{}
	for _, fn := range opts {
		if fn != nil {
			fn(o)
		}
	}
	return o
}

// withPools attaches the registry's shared storage pools. Unexported: the
// Registry owns pool lifecycle (Evict donates a tracker's storage back),
// and a pool shared wider than its owner could reuse buffers while a
// released tracker still runs.
func withPools(p core.Pools) Option {
	return func(o *options) { o.pools = p }
}

// Option configures a Tracker at construction. Options are applied by New
// in the order given; later options override earlier ones. Installing
// observability through options (WithSink, WithTracing, WithAudit) is
// preferred over the post-hoc setters because the tracker is fully wired
// before the first row arrives — there is no window in which traffic goes
// unobserved, and no unsynchronized field write after ingestion may have
// started.
type Option func(*options)

// WithParallel runs ingestion through the per-site pipeline: each site's
// local work (skew reordering, histogram upkeep, sketch updates) runs on a
// worker goroutine, and a single coordinator goroutine applies the
// resulting site→coordinator updates in global (T, site) order, so the
// coordinator state — and therefore Sketch — is bit-for-bit identical to
// the sequential path's.
//
// workers is the number of site-work goroutines (≤0 means GOMAXPROCS;
// capped at Sites). Only the one-way deterministic protocols (DA1, DA2,
// DA2C, Decay) support the pipeline; New fails with ErrParallelUnsupported
// for the sampling family, and when combined with WithTracing or
// WithAudit, whose instrumentation assumes the sequential path.
//
// In parallel mode each site must be fed by at most one goroutine (see
// the Tracker concurrency contract), per-site rather than global timestamp
// ordering is enforced, and stale rows are counted in Metrics instead of
// being returned as errors from TryObserve. Call Drain (or any query) to
// synchronize, and Close when done to stop the goroutines.
func WithParallel(workers int) Option {
	return func(o *options) {
		o.parallel = true
		o.workers = workers
	}
}

// WithRingSize sets the per-site input ring capacity for WithParallel,
// in row blocks (rounded up to a power of two; ≤0 means the default,
// 256). A TryObserve row occupies one block; an ObserveBatch run fills
// blocks to capacity. When a site's ring fills, TryObserve/ObserveBatch
// block until its worker catches up — backpressure, not loss.
func WithRingSize(n int) Option {
	return func(o *options) { o.ringSize = n }
}

// WithSnapshots arms the lock-free published-snapshot read path: the
// tracker publishes an immutable, versioned copy of its coordinator state
// at construction and every `every` events thereafter (sequential mode:
// delivered rows and clock advances; parallel mode: updates applied at the
// coordinator — passes that apply nothing publish nothing, because the
// state cannot have changed). ≤0 means the default cadence, 256.
//
// On an armed tracker, Sketch, SketchGram, Snapshot, SnapshotVersion and
// the analytics derived from Snapshot read the latest published version
// without locks — safe from any number of goroutines concurrently with
// live ingestion, at most one cadence behind it. Drain publishes a fresh
// snapshot, so Drain-then-query is exact. Each publication copies the
// small coordinator state (O(d²) for the deterministic family), amortized
// across the cadence; sinks installed alongside snapshots may be invoked
// from the publishing goroutine and must be safe for concurrent use in
// parallel mode.
func WithSnapshots(every int) Option {
	return func(o *options) {
		o.snapshots = true
		o.snapEvery = every
	}
}

// WithSink installs an event sink from the start (see Tracker.SetSink for
// the event vocabulary). With WithParallel the sink is invoked from
// multiple worker goroutines and must be safe for concurrent use
// (CountingSink and other atomic sinks qualify).
func WithSink(s Sink) Option {
	return func(o *options) {
		o.sink = s
		o.haveSink = true
	}
}

// WithTracing enables causal tracing from the start (see
// Tracker.EnableTracing). Incompatible with WithParallel.
func WithTracing(cfg TraceConfig) Option {
	return func(o *options) { o.tracing = &cfg }
}

// WithAudit enables the live ε-error auditor from the start (see
// Tracker.EnableAudit). Incompatible with WithParallel.
func WithAudit(cfg AuditConfig) Option {
	return func(o *options) { o.audit = &cfg }
}
