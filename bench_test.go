package distwindow_test

// One testing.B benchmark per table and figure of the paper's evaluation
// (§IV). These run reduced ("tiny") streams so that `go test -bench=.`
// finishes in minutes and reports the figures' headline numbers as custom
// metrics; `go run ./cmd/trackbench` regenerates the complete series at
// default or paper ("full") scale.
//
// Metric conventions: avg_err/max_err are observed covariance errors,
// msg_words is communication per window (the paper's msg metric),
// site_words is the maximum per-site space, rows_per_s the update rate.

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"distwindow"
	"distwindow/internal/bench"
	"distwindow/internal/datagen"
	"distwindow/internal/obs/telemetry"
)

var (
	dsOnce sync.Once
	dsAll  []datagen.Dataset
)

func datasets() (pamap, synth, wiki datagen.Dataset) {
	dsOnce.Do(func() { dsAll = bench.Datasets(bench.Tiny, 1) })
	return dsAll[0], dsAll[1], dsAll[2]
}

func runOne(b *testing.B, ds datagen.Dataset, p distwindow.Protocol, eps float64, opt bench.Options) bench.Result {
	b.Helper()
	r, err := bench.Run(ds, p, eps, opt)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkTable3Datasets regenerates Table III (dataset summaries).
func BenchmarkTable3Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dss := bench.Datasets(bench.Tiny, int64(i+1))
		for _, ds := range dss {
			s := datagen.Summarize(ds)
			if s.N == 0 {
				b.Fatal("empty dataset")
			}
		}
	}
	dss := bench.Datasets(bench.Tiny, 1)
	b.ReportMetric(dss[0].R, "pamap_R")
	b.ReportMetric(dss[1].R, "synthetic_R")
	b.ReportMetric(dss[2].R, "wiki_R")
}

// BenchmarkTable2Scaling verifies Table II's communication dependence on
// ε: sampling ∝ 1/ε², deterministic ∝ 1/ε (empirical log-log exponents).
func BenchmarkTable2Scaling(b *testing.B) {
	_, synth, _ := datasets()
	var alphaS, alphaD float64
	for i := 0; i < b.N; i++ {
		var rs []bench.Result
		for _, eps := range []float64{0.1, 0.2, 0.3} {
			for _, p := range []distwindow.Protocol{distwindow.PWOR, distwindow.DA1} {
				rs = append(rs, runOne(b, synth, p, eps, bench.Options{Queries: 1, Seed: 1, SkipErr: true}))
			}
		}
		sl := bench.Table2Check(rs)
		alphaS, alphaD = sl[distwindow.PWOR], sl[distwindow.DA1]
	}
	b.ReportMetric(alphaS, "alpha_sampling")
	b.ReportMetric(alphaD, "alpha_deterministic")
}

// epsPanel runs the ε-sweep behind panels (a)–(d) of a figure and reports
// the ε=0.1 operating point of the named protocol.
func epsPanel(b *testing.B, ds datagen.Dataset, wiki bool) {
	protos := bench.FigureProtocols(wiki)
	var last []bench.Result
	for i := 0; i < b.N; i++ {
		var rs []bench.Result
		for _, p := range protos {
			rs = append(rs, runOne(b, ds, p, 0.1, bench.Options{Queries: 20, Seed: 1}))
		}
		last = rs
	}
	for _, r := range last {
		switch r.Protocol {
		case distwindow.PWORAll:
			b.ReportMetric(r.AvgErr, "pwor_all_err")
			b.ReportMetric(r.MsgWords, "pwor_all_msg")
		case distwindow.DA2:
			b.ReportMetric(r.AvgErr, "da2_err")
			b.ReportMetric(r.MsgWords, "da2_msg")
		}
	}
}

// BenchmarkFig1ErrVsEps, ...CommVsEps and ...Tradeoff share one sweep: the
// paper's panels 1(a)–1(d) are views of the same (ε, err, msg) data.
func BenchmarkFig1ErrVsEps(b *testing.B) { p, _, _ := datasets(); epsPanel(b, p, false) }

// BenchmarkFig1CommVsEps measures panel 1(b): words/window as ε shrinks.
func BenchmarkFig1CommVsEps(b *testing.B) {
	p, _, _ := datasets()
	var lo, hi bench.Result
	for i := 0; i < b.N; i++ {
		lo = runOne(b, p, distwindow.DA1, 0.1, bench.Options{Queries: 1, Seed: 1, SkipErr: true})
		hi = runOne(b, p, distwindow.DA1, 0.3, bench.Options{Queries: 1, Seed: 1, SkipErr: true})
	}
	b.ReportMetric(lo.MsgWords, "da1_msg_eps0.1")
	b.ReportMetric(hi.MsgWords, "da1_msg_eps0.3")
}

// BenchmarkFig1Tradeoff measures panels 1(c,d): err against msg.
func BenchmarkFig1Tradeoff(b *testing.B) {
	p, _, _ := datasets()
	var det, smp bench.Result
	for i := 0; i < b.N; i++ {
		det = runOne(b, p, distwindow.DA1, 0.1, bench.Options{Queries: 20, Seed: 1})
		smp = runOne(b, p, distwindow.PWORAll, 0.1, bench.Options{Queries: 20, Seed: 1})
	}
	b.ReportMetric(det.AvgErr/det.MsgWords*1e6, "da1_err_per_Mword")
	b.ReportMetric(smp.AvgErr/smp.MsgWords*1e6, "pwor_all_err_per_Mword")
	b.ReportMetric(det.MaxErr, "da1_max_err")
	b.ReportMetric(smp.MaxErr, "pwor_all_max_err")
}

// BenchmarkFig1VarySites measures panels 1(e,f): error stability and the
// deterministic protocols' linear communication dependence on m.
func BenchmarkFig1VarySites(b *testing.B) {
	p, _, _ := datasets()
	var m5, m40 bench.Result
	for i := 0; i < b.N; i++ {
		m5 = runOne(b, p, distwindow.DA1, 0.1, bench.Options{Sites: 5, Queries: 1, Seed: 1, SkipErr: true})
		m40 = runOne(b, p, distwindow.DA1, 0.1, bench.Options{Sites: 40, Queries: 1, Seed: 1, SkipErr: true})
	}
	b.ReportMetric(m5.MsgWords, "da1_msg_m5")
	b.ReportMetric(m40.MsgWords, "da1_msg_m40")
	b.ReportMetric(m40.MsgWords/m5.MsgWords, "msg_ratio_m40_over_m5")
}

// BenchmarkFig2* repeat the panels on SYNTHETIC.
func BenchmarkFig2ErrVsEps(b *testing.B) { _, s, _ := datasets(); epsPanel(b, s, false) }

// BenchmarkFig2CommVsEps measures panel 2(b).
func BenchmarkFig2CommVsEps(b *testing.B) {
	_, s, _ := datasets()
	var lo, hi bench.Result
	for i := 0; i < b.N; i++ {
		lo = runOne(b, s, distwindow.DA2, 0.1, bench.Options{Queries: 1, Seed: 1, SkipErr: true})
		hi = runOne(b, s, distwindow.DA2, 0.3, bench.Options{Queries: 1, Seed: 1, SkipErr: true})
	}
	b.ReportMetric(lo.MsgWords, "da2_msg_eps0.1")
	b.ReportMetric(hi.MsgWords, "da2_msg_eps0.3")
}

// BenchmarkFig2Tradeoff measures panels 2(c,d). DA1 is notably strong on
// SYNTHETIC (rows drawn from one distribution), per the paper.
func BenchmarkFig2Tradeoff(b *testing.B) {
	_, s, _ := datasets()
	var det, smp bench.Result
	for i := 0; i < b.N; i++ {
		det = runOne(b, s, distwindow.DA1, 0.1, bench.Options{Queries: 20, Seed: 1})
		smp = runOne(b, s, distwindow.PWORAll, 0.1, bench.Options{Queries: 20, Seed: 1})
	}
	b.ReportMetric(det.AvgErr, "da1_err")
	b.ReportMetric(det.MsgWords, "da1_msg")
	b.ReportMetric(smp.AvgErr, "pwor_all_err")
	b.ReportMetric(smp.MsgWords, "pwor_all_msg")
}

// BenchmarkFig2VarySites measures panels 2(e,f).
func BenchmarkFig2VarySites(b *testing.B) {
	_, s, _ := datasets()
	var det5, det40, smp5, smp40 bench.Result
	for i := 0; i < b.N; i++ {
		det5 = runOne(b, s, distwindow.DA2, 0.1, bench.Options{Sites: 5, Queries: 1, Seed: 1, SkipErr: true})
		det40 = runOne(b, s, distwindow.DA2, 0.1, bench.Options{Sites: 40, Queries: 1, Seed: 1, SkipErr: true})
		smp5 = runOne(b, s, distwindow.PWOR, 0.1, bench.Options{Sites: 5, Queries: 1, Seed: 1, SkipErr: true})
		smp40 = runOne(b, s, distwindow.PWOR, 0.1, bench.Options{Sites: 40, Queries: 1, Seed: 1, SkipErr: true})
	}
	b.ReportMetric(det40.MsgWords/det5.MsgWords, "det_msg_ratio_m40_m5")
	b.ReportMetric(smp40.MsgWords/(smp5.MsgWords+1), "sampling_msg_ratio_m40_m5")
}

// BenchmarkFig3ErrVsEps covers Figure 3's WIKI panels (DA1 omitted at
// large d, exactly as in the paper).
func BenchmarkFig3ErrVsEps(b *testing.B) { _, _, w := datasets(); epsPanel(b, w, true) }

// BenchmarkFig3Tradeoff measures panels 3(c,d) — the skewed-data contrast
// between PWOR-ALL and ESWOR-ALL the paper highlights.
func BenchmarkFig3Tradeoff(b *testing.B) {
	_, _, w := datasets()
	var pa, ea bench.Result
	for i := 0; i < b.N; i++ {
		pa = runOne(b, w, distwindow.PWORAll, 0.1, bench.Options{Queries: 20, Seed: 1})
		ea = runOne(b, w, distwindow.ESWORAll, 0.1, bench.Options{Queries: 20, Seed: 1})
	}
	b.ReportMetric(pa.AvgErr, "pwor_all_err")
	b.ReportMetric(ea.AvgErr, "eswor_all_err")
	b.ReportMetric(pa.MaxErr, "pwor_all_max_err")
	b.ReportMetric(ea.MaxErr, "eswor_all_max_err")
}

// BenchmarkFig3VarySites covers the {10,20}-site WIKI sweep.
func BenchmarkFig3VarySites(b *testing.B) {
	_, _, w := datasets()
	var m10, m20 bench.Result
	for i := 0; i < b.N; i++ {
		m10 = runOne(b, w, distwindow.DA2, 0.1, bench.Options{Sites: 10, Queries: 1, Seed: 1, SkipErr: true})
		m20 = runOne(b, w, distwindow.DA2, 0.1, bench.Options{Sites: 20, Queries: 1, Seed: 1, SkipErr: true})
	}
	b.ReportMetric(m10.MsgWords, "da2_msg_m10")
	b.ReportMetric(m20.MsgWords, "da2_msg_m20")
}

// BenchmarkFig4Space measures panels 4(a–c): max per-site space vs ε.
func BenchmarkFig4Space(b *testing.B) {
	p, s, w := datasets()
	var sp, ss, sw bench.Result
	for i := 0; i < b.N; i++ {
		sp = runOne(b, p, distwindow.DA2, 0.1, bench.Options{Queries: 1, Seed: 1, SkipErr: true})
		ss = runOne(b, s, distwindow.PWOR, 0.1, bench.Options{Queries: 1, Seed: 1, SkipErr: true})
		sw = runOne(b, w, distwindow.DA2, 0.1, bench.Options{Queries: 1, Seed: 1, SkipErr: true})
	}
	b.ReportMetric(float64(sp.SiteSpace), "pamap_da2_site_words")
	b.ReportMetric(float64(ss.SiteSpace), "synthetic_pwor_site_words")
	b.ReportMetric(float64(sw.SiteSpace), "wiki_da2_site_words")
}

// BenchmarkFig4UpdateRate measures panel 4(d): rows/s per protocol family;
// sampling is d-insensitive, deterministic protocols slow with d.
func BenchmarkFig4UpdateRate(b *testing.B) {
	p, _, w := datasets()
	var sLow, sHigh, dLow, dHigh bench.Result
	for i := 0; i < b.N; i++ {
		sLow = runOne(b, p, distwindow.PWOR, 0.1, bench.Options{Queries: 1, Seed: 1, SkipErr: true})
		sHigh = runOne(b, w, distwindow.PWOR, 0.1, bench.Options{Queries: 1, Seed: 1, SkipErr: true})
		dLow = runOne(b, p, distwindow.DA2, 0.1, bench.Options{Queries: 1, Seed: 1, SkipErr: true})
		dHigh = runOne(b, w, distwindow.DA2, 0.1, bench.Options{Queries: 1, Seed: 1, SkipErr: true})
	}
	b.ReportMetric(sLow.UpdatesPerSec, "sampling_rate_d43")
	b.ReportMetric(sHigh.UpdatesPerSec, "sampling_rate_d128")
	b.ReportMetric(dLow.UpdatesPerSec, "det_rate_d43")
	b.ReportMetric(dHigh.UpdatesPerSec, "det_rate_d128")
}

// BenchmarkObserveHotPath isolates the per-row ingest cost with the
// default (nil) event sink — the guard for the observability layer's
// <5% instrumentation budget. Rows are pre-generated so the loop measures
// Observe alone; the trackers copy, so reuse is safe.
func BenchmarkObserveHotPath(b *testing.B) {
	const (
		d     = 32
		sites = 4
	)
	rows := make([][]float64, 1024)
	rng := rand.New(rand.NewSource(1))
	for i := range rows {
		v := make([]float64, d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		rows[i] = v
	}
	for _, proto := range []distwindow.Protocol{distwindow.PWOR, distwindow.DA2} {
		b.Run(string(proto), func(b *testing.B) {
			tr, err := distwindow.New(distwindow.Config{
				Protocol: proto, D: d, W: 1 << 20, Eps: 0.1, Sites: sites, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.Observe(i%sites, distwindow.Row{T: int64(i + 1), V: rows[i%len(rows)]})
			}
		})
	}
}

// BenchmarkObserveHotPathTraced measures causal tracing's hot-path cost
// against BenchmarkObserveHotPath: "off" (tracing never enabled) must stay
// within the <2% budget — one nil-check per hook — and "1in64" head
// sampling within <10%, paying one atomic add per root plus allocation
// only on sampled rows.
func BenchmarkObserveHotPathTraced(b *testing.B) {
	const (
		d     = 32
		sites = 4
	)
	rows := make([][]float64, 1024)
	rng := rand.New(rand.NewSource(1))
	for i := range rows {
		v := make([]float64, d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		rows[i] = v
	}
	for _, proto := range []distwindow.Protocol{distwindow.PWOR, distwindow.DA2} {
		for _, variant := range []struct {
			name  string
			every int
		}{{"off", 0}, {"1in64", 64}} {
			b.Run(string(proto)+"/"+variant.name, func(b *testing.B) {
				tr, err := distwindow.New(distwindow.Config{
					Protocol: proto, D: d, W: 1 << 20, Eps: 0.1, Sites: sites, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				tr.EnableTracing(distwindow.TraceConfig{SampleEvery: variant.every})
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tr.Observe(i%sites, distwindow.Row{T: int64(i + 1), V: rows[i%len(rows)]})
				}
			})
		}
	}
}

// BenchmarkObserveHotPathTelemetry measures the fleet telemetry plane's
// ingest cost against BenchmarkObserveHotPath: "off" runs the bare loop,
// "on" runs it while a Publisher snapshots the tracker into frames every
// 10ms on its own goroutine (10× the default distrun cadence, to make any
// interference measurable). Collection never touches the ingest path —
// it reads the same atomic counters Metrics does — so on/off must stay
// within the <2% overhead budget benchjson gates on.
func BenchmarkObserveHotPathTelemetry(b *testing.B) {
	const (
		d     = 32
		sites = 4
	)
	rows := make([][]float64, 1024)
	rng := rand.New(rand.NewSource(1))
	for i := range rows {
		v := make([]float64, d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		rows[i] = v
	}
	for _, proto := range []distwindow.Protocol{distwindow.PWOR, distwindow.DA2} {
		for _, teleOn := range []bool{false, true} {
			name := string(proto) + "/off"
			if teleOn {
				name = string(proto) + "/on"
			}
			b.Run(name, func(b *testing.B) {
				tr, err := distwindow.New(distwindow.Config{
					Protocol: proto, D: d, W: 1 << 20, Eps: 0.1, Sites: sites, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				if teleOn {
					pub := telemetry.NewPublisher(
						func() telemetry.Frame { return tr.TelemetryFrame(0, "bench") },
						func(telemetry.Frame) error { return nil },
					)
					pub.Start(10 * time.Millisecond)
					defer pub.Stop()
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tr.Observe(i%sites, distwindow.Row{T: int64(i + 1), V: rows[i%len(rows)]})
				}
			})
		}
	}
}
