package distwindow

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math/rand"
	"testing"
)

// runSplit drives rows[0:k] into a tracker, checkpoints, restores, drives
// rows[k:], and returns the restored tracker; the reference tracker sees
// all rows uninterrupted.
func runSplit(t *testing.T, cfg Config, rows []Row, sites []int, k int) (ref, restored *Tracker) {
	t.Helper()
	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	half, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		ref.Observe(sites[i], r)
		if i < k {
			half.Observe(sites[i], r)
		}
	}
	var buf bytes.Buffer
	if err := half.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err = Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := k; i < len(rows); i++ {
		restored.Observe(sites[i], rows[i])
	}
	return ref, restored
}

func checkpointFixture(n, d, m int, seed int64) ([]Row, []int) {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]Row, n)
	sites := make([]int, n)
	for i := range rows {
		v := make([]float64, d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		rows[i] = Row{T: int64(i + 1), V: v}
		sites[i] = rng.Intn(m)
	}
	return rows, sites
}

func TestCheckpointDA1BitIdentical(t *testing.T) {
	cfg := Config{Protocol: DA1, D: 5, W: 400, Eps: 0.2, Sites: 3, Seed: 1}
	rows, sites := checkpointFixture(2000, 5, 3, 2)
	ref, restored := runSplit(t, cfg, rows, sites, 1000)
	if !ref.Sketch().Equal(restored.Sketch()) {
		t.Fatal("restored DA1 diverged from the uninterrupted run")
	}
}

func TestCheckpointDA2BitIdentical(t *testing.T) {
	cfg := Config{Protocol: DA2, D: 5, W: 400, Eps: 0.2, Sites: 3, Seed: 1}
	rows, sites := checkpointFixture(2000, 5, 3, 3)
	// Checkpoint mid-window (not at a boundary) to exercise ledger/queue
	// serialization.
	ref, restored := runSplit(t, cfg, rows, sites, 1100)
	if !ref.Sketch().Equal(restored.Sketch()) {
		t.Fatal("restored DA2 diverged from the uninterrupted run")
	}
}

func TestCheckpointDA2CBitIdentical(t *testing.T) {
	cfg := Config{Protocol: DA2C, D: 4, W: 300, Eps: 0.25, Sites: 2, Seed: 1}
	rows, sites := checkpointFixture(1500, 4, 2, 4)
	ref, restored := runSplit(t, cfg, rows, sites, 700)
	if !ref.Sketch().Equal(restored.Sketch()) {
		t.Fatal("restored DA2-C diverged from the uninterrupted run")
	}
}

func TestCheckpointAtWindowBoundary(t *testing.T) {
	cfg := Config{Protocol: DA2, D: 3, W: 250, Eps: 0.2, Sites: 2, Seed: 1}
	rows, sites := checkpointFixture(1000, 3, 2, 5)
	// k chosen so the last observed timestamp is exactly a boundary.
	ref, restored := runSplit(t, cfg, rows, sites, 500)
	if !ref.Sketch().Equal(restored.Sketch()) {
		t.Fatal("boundary checkpoint diverged")
	}
}

func TestCheckpointSamplingRefused(t *testing.T) {
	tr, _ := New(Config{Protocol: PWOR, D: 3, W: 100, Eps: 0.2, Sites: 2, Ell: 8})
	if tr.Checkpointable() {
		t.Fatal("sampling protocols must not claim checkpointability")
	}
	var buf bytes.Buffer
	if err := tr.Checkpoint(&buf); err == nil {
		t.Fatal("want error checkpointing a sampling tracker")
	}
}

func TestCheckpointable(t *testing.T) {
	for p, want := range map[Protocol]bool{DA1: true, DA2: true, DA2C: true, PWOR: false, ESWOR: false} {
		tr, err := New(Config{Protocol: p, D: 3, W: 100, Eps: 0.2, Sites: 2, Ell: 8})
		if err != nil {
			t.Fatal(err)
		}
		if tr.Checkpointable() != want {
			t.Errorf("%s: Checkpointable = %v, want %v", p, tr.Checkpointable(), want)
		}
	}
}

func TestRestoreCorruptCheckpoint(t *testing.T) {
	if _, err := Restore(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("want error for garbage input")
	}
}

func TestCheckpointRoundTripPreservesConfig(t *testing.T) {
	cfg := Config{Protocol: DA1, D: 4, W: 500, Eps: 0.1, Sites: 5, Seed: 9}
	tr, _ := New(cfg)
	rows, sites := checkpointFixture(300, 4, 5, 6)
	for i, r := range rows {
		tr.Observe(sites[i], r)
	}
	var buf bytes.Buffer
	if err := tr.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Config() != cfg {
		t.Fatalf("restored config %+v != %+v", restored.Config(), cfg)
	}
	if restored.Name() != "DA1" {
		t.Fatalf("restored Name = %q", restored.Name())
	}
}

// tamper checkpoints tr, decodes the envelope, applies mutate, and
// re-encodes — a forged or mislabeled checkpoint file.
func tamper(t *testing.T, tr *Tracker, mutate func(*checkpointEnvelope)) *bytes.Reader {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	var env checkpointEnvelope
	if err := gob.NewDecoder(&buf).Decode(&env); err != nil {
		t.Fatal(err)
	}
	mutate(&env)
	var out bytes.Buffer
	if err := gob.NewEncoder(&out).Encode(env); err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(out.Bytes())
}

func trackerFor(t *testing.T, p Protocol) *Tracker {
	t.Helper()
	tr, err := New(Config{Protocol: p, D: 4, W: 400, Eps: 0.2, Sites: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rows, sites := checkpointFixture(200, 4, 3, 3)
	for i, r := range rows {
		tr.Observe(sites[i], r)
	}
	return tr
}

func TestRestoreCorruptSentinel(t *testing.T) {
	if _, err := Restore(bytes.NewReader([]byte("not a checkpoint"))); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("garbage input: got %v, want ErrCheckpointCorrupt", err)
	}
}

func TestRestoreRejectsInvalidConfig(t *testing.T) {
	r := tamper(t, trackerFor(t, DA1), func(env *checkpointEnvelope) {
		env.Config.Eps = 0 // fails Config.Validate
	})
	if _, err := Restore(r); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("invalid config: got %v, want ErrCheckpointCorrupt", err)
	}
}

func TestRestoreRejectsProtocolMismatch(t *testing.T) {
	cases := []struct {
		name   string
		p      Protocol
		mutate func(*checkpointEnvelope)
	}{
		{"header disagrees with config", DA1, func(env *checkpointEnvelope) {
			env.Protocol = DA2
		}},
		{"DA1 header over DA2 state", DA2, func(env *checkpointEnvelope) {
			env.Protocol = DA1
			env.Config.Protocol = DA1
		}},
		{"DA2 header over compressed state", DA2C, func(env *checkpointEnvelope) {
			env.Protocol = DA2
			env.Config.Protocol = DA2
		}},
		{"DA2C header over plain state", DA2, func(env *checkpointEnvelope) {
			env.Protocol = DA2C
			env.Config.Protocol = DA2C
		}},
		{"state stripped", DA2, func(env *checkpointEnvelope) {
			env.DA2 = nil
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := tamper(t, trackerFor(t, tc.p), tc.mutate)
			if _, err := Restore(r); !errors.Is(err, ErrCheckpointMismatch) {
				t.Fatalf("got %v, want ErrCheckpointMismatch", err)
			}
		})
	}
}
