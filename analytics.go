package distwindow

import (
	"fmt"
	"math"

	"distwindow/mat"
)

// This file holds the downstream-analytics helpers the paper motivates in
// §I: approximate PCA from a covariance sketch (application 1, change
// detection) and sketch-based anomaly scoring (application 2, after Huang
// and Kasiviswanathan, PVLDB 2015).

// PCA is an approximate principal component basis extracted from a
// covariance sketch: the top-k right singular vectors and the
// corresponding singular values of the sketch.
type PCA struct {
	// Components has one principal direction per row (k×d, orthonormal).
	Components *mat.Dense
	// Values are the squared singular values (variance captured per
	// component).
	Values []float64
}

// SketchPCA computes the approximate top-k PCA basis of the window matrix
// from its covariance sketch b. Ghashami–Phillips show the top-k right
// singular vectors of an ε-covariance sketch span a subspace capturing
// the data's variance to within ε‖A‖_F² per direction.
func SketchPCA(b *mat.Dense, k int) PCA {
	if k < 1 {
		panic("distwindow: PCA k must be ≥ 1")
	}
	svd := mat.ThinSVD(b)
	if k > len(svd.S) {
		k = len(svd.S)
	}
	comp := mat.NewDense(k, b.Cols())
	vals := make([]float64, k)
	for i := 0; i < k; i++ {
		comp.SetRow(i, svd.Vt.Row(i))
		vals[i] = svd.S[i] * svd.S[i]
	}
	return PCA{Components: comp, Values: vals}
}

// SubspaceDistance returns a change score in [0, 1] between two PCA bases:
// 1 − σ_min(P·Qᵀ)², where σ_min is over the principal angles of the two
// subspaces. Scores near 0 mean the testing window's subspace matches the
// reference window; scores near 1 flag a change (the §I change-detection
// application).
func SubspaceDistance(p, q PCA) float64 {
	if p.Components.Rows() == 0 || q.Components.Rows() == 0 {
		return 1
	}
	m := mat.Mul(p.Components, q.Components.T())
	svd := mat.ThinSVD(m)
	if len(svd.S) == 0 {
		return 1
	}
	smin := svd.S[len(svd.S)-1]
	d := 1 - smin*smin
	if d < 0 {
		return 0
	}
	return d
}

// AnomalyScorer scores incoming points against the sketch of the recent
// (non-anomalous) window: the score is the fraction of a point's energy
// outside the sketch's top-k subspace — the residual projection distance
// f(B, x) that approximates f(A_w, x) when B is a covariance sketch of
// A_w.
type AnomalyScorer struct {
	basis *mat.Dense
}

// NewAnomalyScorer builds a scorer from a covariance sketch using its
// top-k subspace.
func NewAnomalyScorer(b *mat.Dense, k int) *AnomalyScorer {
	return &AnomalyScorer{basis: SketchPCA(b, k).Components}
}

// Score returns ‖x − V_kV_kᵀx‖²/‖x‖² ∈ [0, 1]: 0 means x lies in the
// window's dominant subspace, 1 means it is orthogonal to it.
func (s *AnomalyScorer) Score(x []float64) float64 {
	nx := mat.VecNormSq(x)
	if nx == 0 {
		return 0
	}
	proj := mat.MulVec(s.basis, x)
	res := nx - mat.VecNormSq(proj)
	if res < 0 {
		return 0
	}
	return res / nx
}

// LowRankApprox returns the best rank-k approximation factors of the
// sketch: the k×d matrix Σ_k^{1/2}·V_kᵀ whose Gram matrix approximates
// A_wᵀA_w restricted to the top-k subspace. It is the building block the
// paper cites for low-rank approximation applications.
func LowRankApprox(b *mat.Dense, k int) *mat.Dense {
	svd := mat.ThinSVD(b)
	if k > len(svd.S) {
		k = len(svd.S)
	}
	out := mat.NewDense(k, b.Cols())
	for i := 0; i < k; i++ {
		vt := svd.Vt.Row(i)
		row := out.Row(i)
		for j := range row {
			row[j] = svd.S[i] * vt[j]
		}
	}
	return out
}

// ProjectionEnergy returns ‖Bx‖² for a unit-normalized direction x — the
// quantity a covariance sketch preserves for every direction
// (‖A_wx‖² ≈ ‖Bx‖² within ε‖A_w‖_F²).
func ProjectionEnergy(b *mat.Dense, x []float64) float64 {
	n := mat.VecNorm(x)
	if n == 0 {
		return 0
	}
	u := make([]float64, len(x))
	for i, v := range x {
		u[i] = v / n
	}
	return mat.VecNormSq(mat.MulVec(b, u))
}

// FormatStats renders a Stats value as the paper reports costs: total
// words, split by direction, plus space maxima.
func FormatStats(s Stats) string {
	return fmt.Sprintf("words=%d (up=%d down=%d) msgs=%d/%d broadcasts=%d site_space=%d coord_space=%d",
		s.TotalWords(), s.WordsUp, s.WordsDown, s.MsgsUp, s.MsgsDown, s.Broadcasts, s.MaxSiteWords, s.CoordWords)
}

// EffectiveEps reports the observed covariance error of b against ref and
// whether it is within the requested ε (with the constant-factor slack c
// the analyses allow).
func EffectiveEps(ref, b *mat.Dense, eps, c float64) (float64, bool) {
	e := mat.CovErr(ref, b)
	return e, !math.IsNaN(e) && e <= c*eps
}
