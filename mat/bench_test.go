package mat

import (
	"math/rand"
	"testing"
)

func benchMat(n, d int, seed int64) *Dense {
	rng := rand.New(rand.NewSource(seed))
	m := NewDense(n, d)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	return m
}

func BenchmarkMul128(b *testing.B) {
	x := benchMat(128, 128, 1)
	y := benchMat(128, 128, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
}

func BenchmarkGram64x512(b *testing.B) {
	a := benchMat(64, 512, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Gram(a)
	}
}

func BenchmarkThinSVDWide32x512(b *testing.B) {
	a := benchMat(32, 512, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ThinSVD(a)
	}
}

func BenchmarkThinSVDTall512x32(b *testing.B) {
	a := benchMat(512, 32, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ThinSVD(a)
	}
}

func BenchmarkEigSym64(b *testing.B) {
	s := Gram(benchMat(128, 64, 6))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EigSym(s)
	}
}

func BenchmarkSymSpectralNorm256(b *testing.B) {
	s := Gram(benchMat(64, 256, 7))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SymSpectralNorm(s)
	}
}

func BenchmarkHouseholderQR128(b *testing.B) {
	a := benchMat(128, 64, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		HouseholderQR(a)
	}
}

func BenchmarkPSDSqrt64(b *testing.B) {
	c := Gram(benchMat(128, 64, 9))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		PSDSqrt(c)
	}
}
