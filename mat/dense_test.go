package mat

import (
	"math"
	"strings"
	"testing"
)

func TestNewDenseZeroed(t *testing.T) {
	m := NewDense(3, 4)
	r, c := m.Dims()
	if r != 3 || c != 4 {
		t.Fatalf("Dims() = %d×%d, want 3×4", r, c)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("At(%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewDensePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative dimension")
		}
	}()
	NewDense(-1, 2)
}

func TestNewDenseDataWrapsWithoutCopy(t *testing.T) {
	d := []float64{1, 2, 3, 4, 5, 6}
	m := NewDenseData(2, 3, d)
	m.Set(0, 0, 42)
	if d[0] != 42 {
		t.Fatal("NewDenseData should not copy the backing slice")
	}
	if m.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %v, want 6", m.At(1, 2))
	}
}

func TestNewDenseDataPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	NewDenseData(2, 3, []float64{1, 2, 3})
}

func TestIdentity(t *testing.T) {
	m := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Fatalf("Identity(3).At(%d,%d) = %v, want %v", i, j, m.At(i, j), want)
			}
		}
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("dims = %d×%d, want 3×2", m.Rows(), m.Cols())
	}
	if m.At(2, 1) != 6 {
		t.Fatalf("At(2,1) = %v, want 6", m.At(2, 1))
	}
}

func TestFromRowsEmpty(t *testing.T) {
	m := FromRows(nil)
	if m.Rows() != 0 || m.Cols() != 0 {
		t.Fatalf("FromRows(nil) dims = %d×%d, want 0×0", m.Rows(), m.Cols())
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestRowSharesStorage(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	m.Row(1)[0] = 99
	if m.At(1, 0) != 99 {
		t.Fatal("Row must share storage with the matrix")
	}
}

func TestRowCopyIsolated(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	r := m.RowCopy(0)
	r[0] = 77
	if m.At(0, 0) != 1 {
		t.Fatal("RowCopy must not share storage")
	}
}

func TestSetRow(t *testing.T) {
	m := NewDense(2, 3)
	m.SetRow(1, []float64{7, 8, 9})
	if m.At(1, 2) != 9 {
		t.Fatalf("At(1,2) = %v, want 9", m.At(1, 2))
	}
}

func TestSetRowPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDense(2, 3).SetRow(0, []float64{1})
}

func TestCol(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	c := m.Col(1)
	want := []float64{2, 4, 6}
	for i, v := range want {
		if c[i] != v {
			t.Fatalf("Col(1)[%d] = %v, want %v", i, c[i], v)
		}
	}
}

func TestCloneIsolated(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	n := m.Clone()
	n.Set(0, 0, 100)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestCopyFrom(t *testing.T) {
	a := NewDense(2, 2)
	b := FromRows([][]float64{{1, 2}, {3, 4}})
	a.CopyFrom(b)
	if !a.Equal(b) {
		t.Fatal("CopyFrom should make matrices equal")
	}
}

func TestZero(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	m.Zero()
	if FrobSq(m) != 0 {
		t.Fatal("Zero should clear all elements")
	}
}

func TestSliceRowsView(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	s := m.SliceRows(1, 3)
	if s.Rows() != 2 || s.At(0, 0) != 3 {
		t.Fatalf("SliceRows wrong content: %v", s)
	}
	s.Set(0, 0, -1)
	if m.At(1, 0) != -1 {
		t.Fatal("SliceRows must be a view")
	}
}

func TestStack(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{3, 4}, {5, 6}})
	s := Stack(a, nil, b)
	if s.Rows() != 3 || s.At(2, 1) != 6 {
		t.Fatalf("Stack wrong: %v", s)
	}
}

func TestStackEmpty(t *testing.T) {
	s := Stack()
	if s.Rows() != 0 || s.Cols() != 0 {
		t.Fatal("Stack() should be 0×0")
	}
}

func TestStackMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Stack(NewDense(1, 2), NewDense(1, 3))
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.T()
	if mt.Rows() != 3 || mt.Cols() != 2 {
		t.Fatalf("T dims = %d×%d, want 3×2", mt.Rows(), mt.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Fatalf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if !m.T().T().Equal(m) {
		t.Fatal("(Aᵀ)ᵀ should equal A")
	}
}

func TestEqualApprox(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{1.0000001, 2}})
	if !a.EqualApprox(b, 1e-5) {
		t.Fatal("should be approx equal at 1e-5")
	}
	if a.EqualApprox(b, 1e-9) {
		t.Fatal("should not be approx equal at 1e-9")
	}
	if a.EqualApprox(NewDense(2, 1), 1) {
		t.Fatal("different shapes are never equal")
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	small := FromRows([][]float64{{1, 2}})
	if !strings.Contains(small.String(), "1") {
		t.Fatalf("small String should show entries: %q", small.String())
	}
	large := NewDense(20, 20)
	if strings.Contains(large.String(), "\n") {
		t.Fatal("large String should be elided")
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDense(2, 2).At(2, 0)
}

func TestNaNPropagation(t *testing.T) {
	m := FromRows([][]float64{{math.NaN()}})
	if !math.IsNaN(FrobSq(m)) {
		t.Fatal("FrobSq of NaN matrix should be NaN")
	}
}
