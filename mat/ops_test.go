package mat

import (
	"math"
	"math/rand"
	"testing"
)

func randMat(r, c int, rng *rand.Rand) *Dense {
	m := NewDense(r, c)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	return m
}

func TestAddSub(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{10, 20}, {30, 40}})
	sum := Add(a, b)
	if sum.At(1, 1) != 44 {
		t.Fatalf("Add wrong: %v", sum)
	}
	diff := Sub(b, a)
	if diff.At(0, 0) != 9 {
		t.Fatalf("Sub wrong: %v", diff)
	}
}

func TestAddSubInPlace(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{3, 4}})
	AddInPlace(a, b)
	if a.At(0, 1) != 6 {
		t.Fatalf("AddInPlace wrong: %v", a)
	}
	SubInPlace(a, b)
	if a.At(0, 1) != 2 {
		t.Fatalf("SubInPlace wrong: %v", a)
	}
}

func TestAddDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Add(NewDense(1, 2), NewDense(2, 1))
}

func TestScale(t *testing.T) {
	a := FromRows([][]float64{{1, -2}})
	s := Scale(3, a)
	if s.At(0, 1) != -6 {
		t.Fatalf("Scale wrong: %v", s)
	}
	ScaleInPlace(a, 0)
	if FrobSq(a) != 0 {
		t.Fatal("ScaleInPlace(0) should zero the matrix")
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randMat(4, 4, rng)
	if !Mul(a, Identity(4)).EqualApprox(a, 1e-12) {
		t.Fatal("A·I should equal A")
	}
	if !Mul(Identity(4), a).EqualApprox(a, 1e-12) {
		t.Fatal("I·A should equal A")
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := Mul(a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !got.EqualApprox(want, 1e-12) {
		t.Fatalf("Mul = %v, want %v", got, want)
	}
}

func TestMulAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, b, c := randMat(3, 5, rng), randMat(5, 4, rng), randMat(4, 2, rng)
	l := Mul(Mul(a, b), c)
	r := Mul(a, Mul(b, c))
	if !l.EqualApprox(r, 1e-10) {
		t.Fatal("(AB)C should equal A(BC)")
	}
}

func TestMulInnerMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mul(NewDense(2, 3), NewDense(2, 3))
}

func TestMulVecAgainstMul(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randMat(4, 6, rng)
	x := make([]float64, 6)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := MulVec(a, x)
	want := Mul(a, NewDenseData(6, 1, x))
	for i := range got {
		if math.Abs(got[i]-want.At(i, 0)) > 1e-12 {
			t.Fatalf("MulVec[%d] = %v, want %v", i, got[i], want.At(i, 0))
		}
	}
}

func TestMulTVecAgainstTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randMat(5, 3, rng)
	x := make([]float64, 5)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := MulTVec(a, x)
	want := MulVec(a.T(), x)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("MulTVec[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestGramMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randMat(7, 4, rng)
	g := Gram(a)
	want := Mul(a.T(), a)
	if !g.EqualApprox(want, 1e-10) {
		t.Fatal("Gram should equal AᵀA")
	}
}

func TestGramSymmetricPSD(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randMat(10, 5, rng)
	g := Gram(a)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if math.Abs(g.At(i, j)-g.At(j, i)) > 1e-12 {
				t.Fatal("Gram should be symmetric")
			}
		}
		if g.At(i, i) < 0 {
			t.Fatal("Gram diagonal should be nonnegative")
		}
	}
}

func TestGramAddScale(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randMat(4, 3, rng)
	dst := NewDense(3, 3)
	GramAdd(dst, a, -2)
	want := Scale(-2, Gram(a))
	if !dst.EqualApprox(want, 1e-10) {
		t.Fatal("GramAdd with scale -2 should equal -2·AᵀA")
	}
}

func TestOuterAdd(t *testing.T) {
	v := []float64{1, 2, 3}
	dst := NewDense(3, 3)
	OuterAdd(dst, v, 2)
	if dst.At(1, 2) != 12 { // 2·2·3
		t.Fatalf("OuterAdd wrong: %v", dst)
	}
	if dst.At(2, 1) != dst.At(1, 2) {
		t.Fatal("OuterAdd result should be symmetric")
	}
}

func TestDotAxpy(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if Dot(x, y) != 32 {
		t.Fatalf("Dot = %v, want 32", Dot(x, y))
	}
	Axpy(2, x, y)
	if y[2] != 12 {
		t.Fatalf("Axpy wrong: %v", y)
	}
}

func TestDotLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestScaleVec(t *testing.T) {
	x := []float64{1, -2}
	ScaleVec(-3, x)
	if x[0] != -3 || x[1] != 6 {
		t.Fatalf("ScaleVec wrong: %v", x)
	}
}

func TestTraceMatchesSumOfGramDiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randMat(6, 4, rng)
	if math.Abs(Trace(Gram(a))-FrobSq(a)) > 1e-10 {
		t.Fatal("trace(AᵀA) should equal ‖A‖_F²")
	}
}
