package mat

import (
	"math"
	"math/rand"
	"testing"
)

func TestOpSymNormMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := randSym(12, rng)
	want := SymSpectralNorm(s)
	got := OpSymNorm(12, func(x, y []float64) { symMulVec(s, x, y) })
	if math.Abs(got-want) > 1e-6*(1+want) {
		t.Fatalf("OpSymNorm = %v, want %v", got, want)
	}
}

func TestOpSymNormZeroDim(t *testing.T) {
	if OpSymNorm(0, nil) != 0 {
		t.Fatal("zero-dimensional operator should have norm 0")
	}
}

func TestOpSymNormTolLooseStillClose(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := randSym(10, rng)
	want := SymSpectralNorm(s)
	got := OpSymNormTol(10, 1e-3, func(x, y []float64) { symMulVec(s, x, y) })
	if math.Abs(got-want) > 0.05*(1+want) {
		t.Fatalf("loose OpSymNormTol = %v, want ≈%v", got, want)
	}
}

func TestOpSymNormWarmConvergesAcrossCalls(t *testing.T) {
	// A few warm-started iterations per call must converge to the true
	// norm over repeated calls on the same operator.
	rng := rand.New(rand.NewSource(3))
	s := randSym(15, rng)
	want := SymSpectralNorm(s)
	v := make([]float64, 15)
	var got float64
	for call := 0; call < 10; call++ {
		got = OpSymNormWarm(15, v, 4, func(x, y []float64) { symMulVec(s, x, y) })
	}
	if math.Abs(got-want) > 0.02*(1+want) {
		t.Fatalf("warm norm after 10 calls = %v, want %v", got, want)
	}
}

func TestOpSymNormWarmLowerBounds(t *testing.T) {
	// The warm estimate is a Rayleigh-quotient-style lower bound.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		s := randSym(8, rng)
		want := SymSpectralNorm(s)
		v := make([]float64, 8)
		got := OpSymNormWarm(8, v, 3, func(x, y []float64) { symMulVec(s, x, y) })
		if got > want*(1+1e-9) {
			t.Fatalf("warm estimate %v exceeds true norm %v", got, want)
		}
	}
}

func TestOpSymNormWarmPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	OpSymNormWarm(4, make([]float64, 2), 3, nil)
}

func TestOpSymNormWarmSeedsZeroVector(t *testing.T) {
	s := FromRows([][]float64{{3, 0}, {0, 1}})
	v := make([]float64, 2) // zero start must be seeded internally
	got := OpSymNormWarm(2, v, 20, func(x, y []float64) { symMulVec(s, x, y) })
	if math.Abs(got-3) > 1e-6 {
		t.Fatalf("norm = %v, want 3", got)
	}
	if VecNorm(v) == 0 {
		t.Fatal("warm vector should have been updated")
	}
}
