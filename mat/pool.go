package mat

import "sync"

// WorkspacePool shares Workspaces across tracker instances. A Workspace
// grows its buffers monotonically and may be reused dirty, so one pool can
// serve callers of any dimension: a recycled workspace simply regrows (or
// already fits) the next caller's sizes. The pool exists for multi-tenant
// deployments where thousands of trackers are opened and evicted — without
// it every open re-pays the workspace warm-up allocations that the
// zero-alloc steady state depends on.
//
// Get and Put are safe for concurrent use. The Workspaces themselves are
// not: a workspace checked out of the pool is owned exclusively by the
// caller until Put returns it.
type WorkspacePool struct {
	mu   sync.Mutex
	free []*Workspace
	max  int
}

// DefaultWorkspacePoolCap bounds a pool's retained workspaces when
// NewWorkspacePool is given no cap.
const DefaultWorkspacePoolCap = 256

// NewWorkspacePool returns a pool retaining at most max idle workspaces
// (≤0 means DefaultWorkspacePoolCap). Beyond the cap, Put drops the
// workspace for the GC.
func NewWorkspacePool(max int) *WorkspacePool {
	if max <= 0 {
		max = DefaultWorkspacePoolCap
	}
	return &WorkspacePool{max: max}
}

// Get returns a workspace — recycled when one is idle, fresh otherwise.
// A nil pool is valid and always allocates fresh, so call sites need no
// nil-guard.
func (p *WorkspacePool) Get() *Workspace {
	if p == nil {
		return NewWorkspace()
	}
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		ws := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return ws
	}
	p.mu.Unlock()
	return NewWorkspace()
}

// Put returns a workspace to the pool. The caller must not use ws
// afterwards. Nil pools and nil workspaces are no-ops.
func (p *WorkspacePool) Put(ws *Workspace) {
	if p == nil || ws == nil {
		return
	}
	p.mu.Lock()
	if len(p.free) < p.max {
		p.free = append(p.free, ws)
	}
	p.mu.Unlock()
}

// Idle reports the number of workspaces currently retained.
func (p *WorkspacePool) Idle() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}
