package mat

import (
	"math"
	"math/rand"
	"testing"
)

func sparseFixture(d, nnz int, rng *rand.Rand) []float64 {
	v := make([]float64, d)
	for k := 0; k < nnz; k++ {
		v[rng.Intn(d)] = rng.NormFloat64()
	}
	return v
}

func TestToSparseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := sparseFixture(64, 10, rng)
	s := ToSparse(v, 0.5)
	if s == nil {
		t.Fatal("sparse vector rejected")
	}
	back := s.Dense()
	for i := range v {
		if back[i] != v[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

func TestToSparseRejectsDense(t *testing.T) {
	v := make([]float64, 10)
	for i := range v {
		v[i] = 1
	}
	if ToSparse(v, 0.5) != nil {
		t.Fatal("full vector should exceed maxFill 0.5")
	}
	if ToSparse(v, 1.0) == nil {
		t.Fatal("maxFill 1.0 should accept anything")
	}
}

func TestSparseNormSqAndDot(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	v := sparseFixture(32, 6, rng)
	s := ToSparse(v, 1)
	if math.Abs(s.NormSq()-VecNormSq(v)) > 1e-12 {
		t.Fatal("NormSq mismatch")
	}
	x := make([]float64, 32)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	if math.Abs(s.Dot(x)-Dot(v, x)) > 1e-12 {
		t.Fatal("Dot mismatch")
	}
}

func TestSparseAxpyInto(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v := sparseFixture(16, 4, rng)
	s := ToSparse(v, 1)
	y1 := make([]float64, 16)
	y2 := make([]float64, 16)
	s.AxpyInto(2.5, y1)
	Axpy(2.5, v, y2)
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-12 {
			t.Fatal("AxpyInto mismatch")
		}
	}
}

func TestSparseOuterAddIntoMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	v := sparseFixture(24, 5, rng)
	s := ToSparse(v, 1)
	d1 := NewDense(24, 24)
	d2 := NewDense(24, 24)
	s.OuterAddInto(d1, -1.5)
	OuterAdd(d2, v, -1.5)
	if !d1.EqualApprox(d2, 1e-12) {
		t.Fatal("sparse outer product differs from dense")
	}
}

func TestSparseDimensionPanics(t *testing.T) {
	s := ToSparse([]float64{1, 0, 2}, 1)
	for name, f := range map[string]func(){
		"dot":   func() { s.Dot([]float64{1}) },
		"axpy":  func() { s.AxpyInto(1, []float64{1}) },
		"outer": func() { s.OuterAddInto(NewDense(2, 2), 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSparseNNZ(t *testing.T) {
	if n := ToSparse([]float64{0, 1, 0, 2}, 1).NNZ(); n != 2 {
		t.Fatalf("NNZ = %d, want 2", n)
	}
}

func BenchmarkOuterAddDense512(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	v := sparseFixture(512, 60, rng)
	dst := NewDense(512, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		OuterAdd(dst, v, 1)
	}
}

func BenchmarkOuterAddSparse512(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	v := sparseFixture(512, 60, rng)
	s := ToSparse(v, 1)
	dst := NewDense(512, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.OuterAddInto(dst, 1)
	}
}
