package mat_test

import (
	"fmt"

	"distwindow/mat"
)

// ExampleEigSym decomposes a symmetric matrix and reconstructs it.
func ExampleEigSym() {
	s := mat.FromRows([][]float64{{2, 1}, {1, 2}})
	e := mat.EigSym(s)
	fmt.Printf("λ = %.0f, %.0f\n", e.Values[0], e.Values[1])
	fmt.Printf("reconstructs: %v\n", e.Reconstruct().EqualApprox(s, 1e-12))
	// Output:
	// λ = 3, 1
	// reconstructs: true
}

// ExampleThinSVD factors a rank-1 matrix.
func ExampleThinSVD() {
	a := mat.FromRows([][]float64{{3, 4}, {6, 8}})
	svd := mat.ThinSVD(a)
	fmt.Printf("rank-1: σ₂ ≈ 0 is %v\n", svd.S[1] < 1e-9)
	fmt.Printf("σ₁² = %.0f\n", svd.S[0]*svd.S[0]) // ‖A‖_F² for rank 1
	// Output:
	// rank-1: σ₂ ≈ 0 is true
	// σ₁² = 125
}

// ExampleCovErr measures sketch quality.
func ExampleCovErr() {
	a := mat.FromRows([][]float64{{1, 0}, {0, 1}, {1, 1}})
	fmt.Printf("perfect sketch: %.0f\n", mat.CovErr(a, a.Clone()))
	// Empty sketch: ‖AᵀA‖₂/‖A‖_F² = 3/4.
	e := mat.CovErr(a, mat.NewDense(0, 2))
	fmt.Printf("empty sketch ≈ 0.75: %v\n", e > 0.74 && e < 0.76)
	// Output:
	// perfect sketch: 0
	// empty sketch ≈ 0.75: true
}

// ExamplePSDSqrt factors a covariance matrix back into row form.
func ExamplePSDSqrt() {
	a := mat.FromRows([][]float64{{2, 0}, {0, 3}})
	c := mat.Gram(a)
	b := mat.PSDSqrt(c)
	fmt.Printf("BᵀB = AᵀA: %v\n", mat.Gram(b).EqualApprox(c, 1e-9))
	// Output:
	// BᵀB = AᵀA: true
}
