package mat

import (
	"math"
	"math/rand"
	"testing"
)

// randSym returns a random symmetric n×n matrix.
func randSym(n int, rng *rand.Rand) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func TestEigSymDiagonal(t *testing.T) {
	m := FromRows([][]float64{{3, 0, 0}, {0, -1, 0}, {0, 0, 2}})
	e := EigSym(m)
	want := []float64{3, 2, -1}
	for i, v := range want {
		if math.Abs(e.Values[i]-v) > 1e-12 {
			t.Fatalf("Values[%d] = %v, want %v", i, e.Values[i], v)
		}
	}
}

func TestEigSymKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	e := EigSym(FromRows([][]float64{{2, 1}, {1, 2}}))
	if math.Abs(e.Values[0]-3) > 1e-12 || math.Abs(e.Values[1]-1) > 1e-12 {
		t.Fatalf("Values = %v, want [3 1]", e.Values)
	}
}

func TestEigSymReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, n := range []int{1, 2, 5, 20} {
		m := randSym(n, rng)
		e := EigSym(m)
		if !e.Reconstruct().EqualApprox(m, 1e-9*(1+Frob(m))) {
			t.Fatalf("n=%d: reconstruction mismatch", n)
		}
	}
}

func TestEigSymOrthonormalVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := randSym(12, rng)
	e := EigSym(m)
	if !IsOrthonormalRows(e.Vectors, 1e-9) {
		t.Fatal("eigenvectors should be orthonormal")
	}
}

func TestEigSymSortedDescending(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	e := EigSym(randSym(15, rng))
	for i := 1; i < len(e.Values); i++ {
		if e.Values[i] > e.Values[i-1]+1e-12 {
			t.Fatalf("Values not sorted: %v", e.Values)
		}
	}
}

func TestEigSymTracePreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := randSym(9, rng)
	e := EigSym(m)
	var sum float64
	for _, v := range e.Values {
		sum += v
	}
	if math.Abs(sum-Trace(m)) > 1e-9 {
		t.Fatalf("eigenvalue sum %v != trace %v", sum, Trace(m))
	}
}

func TestEigSymZeroMatrix(t *testing.T) {
	e := EigSym(NewDense(4, 4))
	for _, v := range e.Values {
		if v != 0 {
			t.Fatalf("zero matrix should have zero eigenvalues, got %v", e.Values)
		}
	}
}

func TestEigSymNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EigSym(NewDense(2, 3))
}

func TestThinSVDReconstructWide(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := randMat(5, 12, rng) // n < d
	s := ThinSVD(a)
	if !s.Reconstruct().EqualApprox(a, 1e-8*(1+Frob(a))) {
		t.Fatal("wide SVD reconstruction mismatch")
	}
}

func TestThinSVDReconstructTall(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	a := randMat(12, 5, rng) // n > d
	s := ThinSVD(a)
	if !s.Reconstruct().EqualApprox(a, 1e-8*(1+Frob(a))) {
		t.Fatal("tall SVD reconstruction mismatch")
	}
}

func TestThinSVDSingularValuesSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	s := ThinSVD(randMat(8, 8, rng))
	for i := 1; i < len(s.S); i++ {
		if s.S[i] > s.S[i-1]+1e-12 {
			t.Fatalf("singular values not sorted: %v", s.S)
		}
		if s.S[i] < 0 {
			t.Fatal("singular values must be nonnegative")
		}
	}
}

func TestThinSVDFrobeniusIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := randMat(6, 9, rng)
	s := ThinSVD(a)
	var sum float64
	for _, v := range s.S {
		sum += v * v
	}
	if math.Abs(sum-FrobSq(a)) > 1e-8*(1+FrobSq(a)) {
		t.Fatalf("Σσ² = %v, want ‖A‖_F² = %v", sum, FrobSq(a))
	}
}

func TestThinSVDVtOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	a := randMat(4, 10, rng)
	s := ThinSVD(a)
	if !IsOrthonormalRows(s.Vt, 1e-8) {
		t.Fatal("rows of Vt should be orthonormal")
	}
}

func TestThinSVDRankDeficient(t *testing.T) {
	// Rank-1 matrix: rows are multiples of the same vector.
	a := FromRows([][]float64{{1, 2, 3}, {2, 4, 6}, {-1, -2, -3}})
	s := ThinSVD(a)
	if s.S[0] <= 0 {
		t.Fatal("rank-1 matrix should have a positive top singular value")
	}
	for _, v := range s.S[1:] {
		if v > 1e-8*s.S[0] {
			t.Fatalf("rank-1 matrix should have one singular value, got %v", s.S)
		}
	}
	if !s.Reconstruct().EqualApprox(a, 1e-8) {
		t.Fatal("rank-deficient reconstruction mismatch")
	}
}

func TestThinSVDEmpty(t *testing.T) {
	s := ThinSVD(NewDense(0, 5))
	if len(s.S) != 0 || s.Vt.Rows() != 0 || s.Vt.Cols() != 5 {
		t.Fatal("empty SVD should have no singular values")
	}
}

func TestJacobiSVDMatchesThinSVD(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	a := randMat(6, 10, rng)
	s1 := ThinSVD(a)
	s2 := JacobiSVD(a)
	for i := range s2.S {
		if math.Abs(s1.S[i]-s2.S[i]) > 1e-8*(1+s1.S[0]) {
			t.Fatalf("σ[%d]: thin %v vs jacobi %v", i, s1.S[i], s2.S[i])
		}
	}
	if !s2.Reconstruct().EqualApprox(a, 1e-9*(1+Frob(a))) {
		t.Fatal("JacobiSVD reconstruction mismatch")
	}
}

func TestJacobiSVDSmallSingularValueAccuracy(t *testing.T) {
	// Diagonal matrix with a tiny singular value: Jacobi should recover it
	// with high relative accuracy.
	a := FromRows([][]float64{{1, 0, 0}, {0, 1e-7, 0}})
	s := JacobiSVD(a)
	if math.Abs(s.S[1]-1e-7) > 1e-14 {
		t.Fatalf("small σ = %v, want 1e-7", s.S[1])
	}
}

func TestPSDSqrtRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	a := randMat(10, 6, rng)
	c := Gram(a)
	b := PSDSqrt(c)
	if !Gram(b).EqualApprox(c, 1e-8*(1+Frob(c))) {
		t.Fatal("BᵀB should reconstruct C")
	}
}

func TestPSDSqrtClipsNegative(t *testing.T) {
	// Slightly indefinite matrix (covariance drift in protocols).
	c := FromRows([][]float64{{1, 0}, {0, -1e-9}})
	b := PSDSqrt(c)
	if b.Rows() != 1 {
		t.Fatalf("negative eigenvalue should be clipped, got %d rows", b.Rows())
	}
	g := Gram(b)
	if math.Abs(g.At(0, 0)-1) > 1e-12 {
		t.Fatalf("positive part should survive: %v", g)
	}
}

func TestPSDSqrtZero(t *testing.T) {
	b := PSDSqrt(NewDense(3, 3))
	if b.Rows() != 0 || b.Cols() != 3 {
		t.Fatalf("sqrt of zero matrix should be 0×3, got %d×%d", b.Rows(), b.Cols())
	}
}

func TestHouseholderQRReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, dims := range [][2]int{{6, 4}, {4, 6}, {5, 5}, {1, 3}} {
		a := randMat(dims[0], dims[1], rng)
		qr := HouseholderQR(a)
		if !Mul(qr.Q, qr.R).EqualApprox(a, 1e-9*(1+Frob(a))) {
			t.Fatalf("QR reconstruction mismatch for %v", dims)
		}
	}
}

func TestHouseholderQROrthonormalColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := randMat(8, 5, rng)
	qr := HouseholderQR(a)
	qtq := Mul(qr.Q.T(), qr.Q)
	if !qtq.EqualApprox(Identity(5), 1e-9) {
		t.Fatal("QᵀQ should be identity")
	}
}

func TestHouseholderQRUpperTriangular(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	qr := HouseholderQR(randMat(6, 6, rng))
	for i := 0; i < 6; i++ {
		for j := 0; j < i; j++ {
			if qr.R.At(i, j) != 0 {
				t.Fatal("R should be upper triangular")
			}
		}
	}
}

func TestRandomOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	u := RandomOrthonormal(10, rng)
	if !Mul(u, u.T()).EqualApprox(Identity(10), 1e-9) {
		t.Fatal("UUᵀ should be identity")
	}
	if !Mul(u.T(), u).EqualApprox(Identity(10), 1e-9) {
		t.Fatal("UᵀU should be identity")
	}
}

func TestSymSpectralNormKnown(t *testing.T) {
	m := FromRows([][]float64{{0, 2}, {2, 0}}) // eigenvalues ±2
	if v := SymSpectralNorm(m); math.Abs(v-2) > 1e-8 {
		t.Fatalf("SymSpectralNorm = %v, want 2", v)
	}
}

func TestSymSpectralNormDominantNegative(t *testing.T) {
	m := FromRows([][]float64{{-5, 0}, {0, 1}})
	if v := SymSpectralNorm(m); math.Abs(v-5) > 1e-8 {
		t.Fatalf("SymSpectralNorm = %v, want 5 (|−5|)", v)
	}
}

func TestSymSpectralNormMatchesEig(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for trial := 0; trial < 5; trial++ {
		m := randSym(10, rng)
		e := EigSym(m)
		want := math.Max(math.Abs(e.Values[0]), math.Abs(e.Values[len(e.Values)-1]))
		got := SymSpectralNorm(m)
		if math.Abs(got-want) > 1e-6*(1+want) {
			t.Fatalf("trial %d: SymSpectralNorm = %v, want %v", trial, got, want)
		}
	}
}

func TestSymSpectralNormZero(t *testing.T) {
	if SymSpectralNorm(NewDense(3, 3)) != 0 {
		t.Fatal("zero matrix should have zero norm")
	}
	if SymSpectralNorm(NewDense(0, 0)) != 0 {
		t.Fatal("empty matrix should have zero norm")
	}
}

func TestSpectralNormMatchesTopSingularValue(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	a := randMat(7, 4, rng)
	want := ThinSVD(a).S[0]
	got := SpectralNorm(a)
	if math.Abs(got-want) > 1e-6*(1+want) {
		t.Fatalf("SpectralNorm = %v, want %v", got, want)
	}
}

func TestCovErrIdenticalIsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	a := randMat(9, 4, rng)
	if e := CovErr(a, a.Clone()); e > 1e-10 {
		t.Fatalf("CovErr(A,A) = %v, want ~0", e)
	}
}

func TestCovErrEmptySketch(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	a := randMat(9, 4, rng)
	e := CovErr(a, NewDense(0, 4))
	// ‖AᵀA‖/‖A‖_F² ∈ (0, 1]
	if e <= 0 || e > 1 {
		t.Fatalf("CovErr(A, empty) = %v, want in (0,1]", e)
	}
}

func TestCovErrEmptyTarget(t *testing.T) {
	if e := CovErr(NewDense(0, 3), NewDense(0, 3)); e != 0 {
		t.Fatalf("CovErr(empty, empty) = %v, want 0", e)
	}
	if e := CovErr(NewDense(0, 3), FromRows([][]float64{{1, 0, 0}})); !math.IsInf(e, 1) {
		t.Fatalf("CovErr(empty, nonzero) = %v, want +Inf", e)
	}
}

func TestCovErrGramMatchesCovErr(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	a := randMat(8, 5, rng)
	b := randMat(3, 5, rng)
	e1 := CovErr(a, b)
	e2 := CovErrGram(Gram(a), FrobSq(a), b)
	if math.Abs(e1-e2) > 1e-9 {
		t.Fatalf("CovErr %v vs CovErrGram %v", e1, e2)
	}
}

func TestVecNormOverflowSafe(t *testing.T) {
	x := []float64{1e200, 1e200}
	if v := VecNorm(x); math.IsInf(v, 1) {
		t.Fatal("VecNorm should not overflow")
	} else if math.Abs(v-1e200*math.Sqrt2) > 1e187 {
		t.Fatalf("VecNorm = %v", v)
	}
}

func TestVecNormZero(t *testing.T) {
	if VecNorm(nil) != 0 || VecNorm([]float64{0, 0}) != 0 {
		t.Fatal("VecNorm of zero vector should be 0")
	}
}
