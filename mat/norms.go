package mat

import "math"

// VecNorm returns the Euclidean (ℓ₂) norm of x, guarding against
// overflow/underflow by scaling.
func VecNorm(x []float64) float64 {
	var scale, ssq float64
	ssq = 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		av := math.Abs(v)
		if scale < av {
			r := scale / av
			ssq = 1 + ssq*r*r
			scale = av
		} else {
			r := av / scale
			ssq += r * r
		}
	}
	if scale == 0 {
		return 0
	}
	return scale * math.Sqrt(ssq)
}

// VecNormSq returns the squared Euclidean norm of x.
func VecNormSq(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return s
}

// FrobSq returns the squared Frobenius norm ‖m‖_F².
func FrobSq(m *Dense) float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return s
}

// Frob returns the Frobenius norm ‖m‖_F.
func Frob(m *Dense) float64 { return math.Sqrt(FrobSq(m)) }

// Trace returns the trace of a square matrix.
func Trace(m *Dense) float64 {
	if m.rows != m.cols {
		panic("mat: Trace of non-square matrix")
	}
	var s float64
	for i := 0; i < m.rows; i++ {
		s += m.data[i*m.cols+i]
	}
	return s
}

// powerIterTol and powerIterMax bound the power-iteration loops below.
// The tolerance is relative; sketching error targets are ≥1e-3 so 1e-9
// leaves ample headroom.
const (
	powerIterTol = 1e-9
	powerIterMax = 2000
)

// SymSpectralNorm returns ‖s‖₂ = max|λᵢ| of a symmetric matrix s using
// power iteration with a deterministic start vector. For a symmetric
// matrix the spectral norm equals the largest absolute eigenvalue, to
// which power iteration converges directly.
//
// A zero matrix returns 0. The result is accurate to a relative tolerance
// of about 1e-9 for well-separated spectra; when the top two |λ| are
// nearly equal, power iteration still converges to the shared magnitude.
func SymSpectralNorm(s *Dense) float64 {
	if s.rows != s.cols {
		panic("mat: SymSpectralNorm of non-square matrix")
	}
	n := s.rows
	if n == 0 {
		return 0
	}
	// Deterministic pseudo-random start avoids orthogonal-start stalls
	// without requiring a rand source.
	v := make([]float64, n)
	seedVec(v)
	w := make([]float64, n)
	var prev float64
	for iter := 0; iter < powerIterMax; iter++ {
		symMulVec(s, v, w)
		nrm := VecNorm(w)
		if nrm == 0 {
			// v is (numerically) in the kernel; perturb deterministically.
			perturb(v, iter)
			continue
		}
		for i := range v {
			v[i] = w[i] / nrm
		}
		if iter > 2 && math.Abs(nrm-prev) <= powerIterTol*math.Max(nrm, 1e-300) {
			return nrm
		}
		prev = nrm
	}
	return prev
}

// SpectralNorm returns ‖a‖₂, the largest singular value of a general
// matrix, via power iteration on aᵀa applied as two mat-vec products
// (never forming the Gram matrix).
func SpectralNorm(a *Dense) float64 {
	if a.rows == 0 || a.cols == 0 {
		return 0
	}
	v := make([]float64, a.cols)
	seedVec(v)
	var prev float64
	for iter := 0; iter < powerIterMax; iter++ {
		u := MulVec(a, v)
		w := MulTVec(a, u)
		nrm := VecNorm(w)
		if nrm == 0 {
			perturb(v, iter)
			continue
		}
		for i := range v {
			v[i] = w[i] / nrm
		}
		if iter > 2 && math.Abs(nrm-prev) <= powerIterTol*math.Max(nrm, 1e-300) {
			prev = nrm
			break
		}
		prev = nrm
	}
	return math.Sqrt(prev)
}

// CovErr returns the covariance error of sketch b against target a:
// ‖aᵀa − bᵀb‖₂ / ‖a‖_F². An empty a with an empty b has error 0; an empty
// a with a nonzero b returns +Inf.
func CovErr(a, b *Dense) float64 {
	fa := FrobSq(a)
	d := a.cols
	if d == 0 {
		d = b.cols
	}
	diff := NewDense(d, d)
	if a.rows > 0 {
		GramAdd(diff, a, 1)
	}
	if b.rows > 0 {
		GramAdd(diff, b, -1)
	}
	nrm := SymSpectralNorm(diff)
	if fa == 0 {
		if nrm == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return nrm / fa
}

// CovErrGram is CovErr given the precomputed Gram matrix aGram = aᵀa and
// its squared Frobenius mass frobSq = ‖a‖_F².
func CovErrGram(aGram *Dense, frobSq float64, b *Dense) float64 {
	diff := aGram.Clone()
	if b.rows > 0 {
		GramAdd(diff, b, -1)
	}
	nrm := SymSpectralNorm(diff)
	if frobSq == 0 {
		if nrm == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return nrm / frobSq
}

// OpSymNorm returns the spectral norm (largest |eigenvalue|) of a
// symmetric linear operator on ℝᵈ given only as a mat-vec closure:
// apply must set y = Op·x. It runs the same power iteration as
// SymSpectralNorm without materializing the operator — the DA1 sites use
// it to test ‖C − Ĉ‖₂ against the reporting threshold without forming the
// d×d difference on every row.
func OpSymNorm(d int, apply func(x, y []float64)) float64 {
	return OpSymNormTol(d, powerIterTol, apply)
}

// OpSymNormTol is OpSymNorm with a caller-chosen relative convergence
// tolerance. Threshold tests that only need to compare the norm against a
// trigger value can pass a loose tolerance (e.g. 1e-3) and converge in a
// handful of iterations.
func OpSymNormTol(d int, tol float64, apply func(x, y []float64)) float64 {
	if d == 0 {
		return 0
	}
	v := make([]float64, d)
	seedVec(v)
	w := make([]float64, d)
	var prev float64
	for iter := 0; iter < powerIterMax; iter++ {
		apply(v, w)
		nrm := VecNorm(w)
		if nrm == 0 {
			perturb(v, iter)
			continue
		}
		for i := range v {
			v[i] = w[i] / nrm
		}
		if iter > 2 && math.Abs(nrm-prev) <= tol*math.Max(nrm, 1e-300) {
			return nrm
		}
		prev = nrm
	}
	return prev
}

// OpSymNormWarm runs `iters` power-iteration steps on a symmetric
// operator starting from (and updating in place) the caller-supplied unit
// vector v — a warm start. It returns the final Rayleigh-quotient norm
// estimate, which lower-bounds the true spectral norm. Protocols that
// re-test the same slowly-moving operator (DA1's ‖C − Ĉ‖₂ trigger) keep v
// across tests: the dominant eigenvector moves little between tests, so a
// handful of iterations recovers the norm to within a few percent at a
// fraction of a cold start's cost.
// OpSymNormWarm allocates its iteration scratch fresh on every call;
// repeated threshold tests should hold a Workspace and call
// OpSymNormWarmWS.
func OpSymNormWarm(d int, v []float64, iters int, apply func(x, y []float64)) float64 {
	return OpSymNormWarmWS(d, v, iters, apply, NewWorkspace())
}

// symMulVec computes w = s·v for symmetric s without allocating.
func symMulVec(s *Dense, v, w []float64) {
	n := s.rows
	for i := 0; i < n; i++ {
		w[i] = Dot(s.data[i*n:(i+1)*n], v)
	}
}

// seedVec fills v with a fixed full-support pattern of unit norm.
func seedVec(v []float64) {
	// A simple LCG gives a deterministic start with no zero coordinates.
	x := uint64(88172645463325252)
	for i := range v {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		v[i] = 0.5 + float64(x%1000)/1000.0
	}
	n := VecNorm(v)
	for i := range v {
		v[i] /= n
	}
}

// perturb nudges v deterministically, used when power iteration lands in a
// kernel direction.
func perturb(v []float64, iter int) {
	v[iter%len(v)] += 1
	n := VecNorm(v)
	for i := range v {
		v[i] /= n
	}
}
