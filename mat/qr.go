package mat

import (
	"math"
	"math/rand"
)

// QR holds a thin QR decomposition A = Q·R with Q n×k having orthonormal
// columns and R k×d upper triangular, k = min(n, d).
type QR struct {
	Q *Dense
	R *Dense
}

// HouseholderQR computes a thin QR decomposition of a by Householder
// reflections. It is used for orthonormal basis generation (datagen's
// random rotation U with U·Uᵀ = I) and as an accuracy cross-check in tests.
func HouseholderQR(a *Dense) QR {
	n, d := a.rows, a.cols
	k := n
	if d < k {
		k = d
	}
	r := a.Clone()
	// Store the k reflectors; apply them to build Q afterwards.
	vs := make([][]float64, 0, k)
	for j := 0; j < k; j++ {
		// Build the Householder vector for column j below the diagonal.
		col := make([]float64, n-j)
		for i := j; i < n; i++ {
			col[i-j] = r.data[i*d+j]
		}
		alpha := VecNorm(col)
		if alpha == 0 {
			vs = append(vs, nil)
			continue
		}
		if col[0] > 0 {
			alpha = -alpha
		}
		col[0] -= alpha
		vn := VecNorm(col)
		if vn == 0 {
			vs = append(vs, nil)
			continue
		}
		for i := range col {
			col[i] /= vn
		}
		// Apply reflector H = I − 2vvᵀ to the trailing submatrix of R.
		for c := j; c < d; c++ {
			var dot float64
			for i := j; i < n; i++ {
				dot += col[i-j] * r.data[i*d+c]
			}
			dot *= 2
			for i := j; i < n; i++ {
				r.data[i*d+c] -= dot * col[i-j]
			}
		}
		vs = append(vs, col)
	}
	// Zero the strictly-lower part to kill round-off residue.
	rThin := NewDense(k, d)
	for i := 0; i < k; i++ {
		for j := i; j < d; j++ {
			rThin.data[i*d+j] = r.data[i*d+j]
		}
	}
	// Q = H₀·H₁·…·H_{k−1} · [I_k; 0].
	q := NewDense(n, k)
	for i := 0; i < k; i++ {
		q.data[i*k+i] = 1
	}
	for j := k - 1; j >= 0; j-- {
		v := vs[j]
		if v == nil {
			continue
		}
		for c := 0; c < k; c++ {
			var dot float64
			for i := j; i < n; i++ {
				dot += v[i-j] * q.data[i*k+c]
			}
			dot *= 2
			for i := j; i < n; i++ {
				q.data[i*k+c] -= dot * v[i-j]
			}
		}
	}
	return QR{Q: q, R: rThin}
}

// RandomOrthonormal returns a d×d orthogonal matrix drawn from the Haar
// distribution (QR of a Gaussian matrix with sign correction), satisfying
// U·Uᵀ = UᵀU = I up to floating-point error.
func RandomOrthonormal(d int, rng *rand.Rand) *Dense {
	g := NewDense(d, d)
	for i := range g.data {
		g.data[i] = rng.NormFloat64()
	}
	qr := HouseholderQR(g)
	// Sign-correct with the diagonal of R for Haar measure.
	for j := 0; j < d; j++ {
		if qr.R.data[j*d+j] < 0 {
			for i := 0; i < d; i++ {
				qr.Q.data[i*d+j] = -qr.Q.data[i*d+j]
			}
		}
	}
	return qr.Q
}

// IsOrthonormalRows reports whether the rows of m are orthonormal within
// tol, i.e. ‖m·mᵀ − I‖_max ≤ tol.
func IsOrthonormalRows(m *Dense, tol float64) bool {
	for i := 0; i < m.rows; i++ {
		for j := i; j < m.rows; j++ {
			d := Dot(m.Row(i), m.Row(j))
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(d-want) > tol {
				return false
			}
		}
	}
	return true
}
