// Package mat implements the dense linear algebra needed by the
// distributed sliding-window matrix-tracking protocols: a row-major dense
// matrix type, BLAS-like operations, Householder QR, a cyclic Jacobi
// symmetric eigendecomposition, thin SVD, spectral norms via power
// iteration, and PSD matrix square roots.
//
// The package is self-contained (standard library only) and deterministic:
// nothing in it draws randomness except functions that take an explicit
// *rand.Rand.
package mat

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a row-major dense matrix of float64 values.
//
// The zero value is an empty (0×0) matrix. Dense values are not safe for
// concurrent mutation.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a zero-initialized r×c matrix.
// It panics if r or c is negative.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %d×%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewDenseData wraps the given backing slice as an r×c matrix without
// copying. It panics if len(data) != r*c.
func NewDenseData(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: data length %d does not match %d×%d", len(data), r, c))
	}
	return &Dense{rows: r, cols: c, data: data}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// FromRows builds a matrix whose rows are copies of the given slices.
// All rows must have equal length; an empty input yields a 0×0 matrix.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return NewDense(0, 0)
	}
	c := len(rows[0])
	m := NewDense(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			panic(fmt.Sprintf("mat: ragged rows: row 0 has %d cols, row %d has %d", c, i, len(r)))
		}
		copy(m.data[i*c:(i+1)*c], r)
	}
	return m
}

// Dims returns the number of rows and columns.
func (m *Dense) Dims() (r, c int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns v to the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %d×%d", i, j, m.rows, m.cols))
	}
}

// Row returns row i as a slice sharing the matrix's backing storage.
// Mutating the returned slice mutates the matrix.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range %d", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// RowCopy returns a copy of row i.
func (m *Dense) RowCopy(i int) []float64 {
	r := m.Row(i)
	out := make([]float64, len(r))
	copy(out, r)
	return out
}

// SetRow copies v into row i. It panics if len(v) != Cols().
func (m *Dense) SetRow(i int, v []float64) {
	if len(v) != m.cols {
		panic(fmt.Sprintf("mat: SetRow length %d != cols %d", len(v), m.cols))
	}
	copy(m.Row(i), v)
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: col %d out of range %d", j, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// Clone returns a deep copy of the matrix.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// reshape resizes m to r×c, reusing the backing slice when its capacity
// suffices (the contents are then stale — callers must fully overwrite).
// Workspace-backed decompositions use this to stay allocation-free at
// steady state.
func (m *Dense) reshape(r, c int) {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %d×%d", r, c))
	}
	n := r * c
	if cap(m.data) < n {
		m.data = make([]float64, n)
	}
	m.rows, m.cols, m.data = r, c, m.data[:n]
}

// CopyFrom overwrites m with the contents of src. Dimensions must match.
func (m *Dense) CopyFrom(src *Dense) {
	if m.rows != src.rows || m.cols != src.cols {
		panic(fmt.Sprintf("mat: CopyFrom dims %d×%d != %d×%d", src.rows, src.cols, m.rows, m.cols))
	}
	copy(m.data, src.data)
}

// Zero sets every element of m to zero.
func (m *Dense) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// Data returns the backing slice in row-major order without copying.
func (m *Dense) Data() []float64 { return m.data }

// SliceRows returns a view of rows [i, j) sharing backing storage.
func (m *Dense) SliceRows(i, j int) *Dense {
	if i < 0 || j < i || j > m.rows {
		panic(fmt.Sprintf("mat: SliceRows [%d,%d) out of range %d", i, j, m.rows))
	}
	return &Dense{rows: j - i, cols: m.cols, data: m.data[i*m.cols : j*m.cols]}
}

// Stack returns a new matrix formed by concatenating the rows of the given
// matrices in order, i.e. the paper's [A; B] notation. All inputs must have
// the same number of columns; nil and 0-row inputs are skipped. Stacking
// nothing yields a 0×0 matrix.
func Stack(ms ...*Dense) *Dense {
	rows, cols := 0, -1
	for _, m := range ms {
		if m == nil || m.rows == 0 {
			continue
		}
		if cols == -1 {
			cols = m.cols
		} else if m.cols != cols {
			panic(fmt.Sprintf("mat: Stack column mismatch %d vs %d", m.cols, cols))
		}
		rows += m.rows
	}
	if cols == -1 {
		return NewDense(0, 0)
	}
	out := NewDense(rows, cols)
	at := 0
	for _, m := range ms {
		if m == nil || m.rows == 0 {
			continue
		}
		copy(out.data[at:], m.data)
		at += len(m.data)
	}
	return out
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	out := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols:]
		for j := 0; j < m.cols; j++ {
			out.data[j*m.rows+i] = row[j]
		}
	}
	return out
}

// Equal reports whether m and n have the same shape and elements.
func (m *Dense) Equal(n *Dense) bool {
	if m.rows != n.rows || m.cols != n.cols {
		return false
	}
	for i, v := range m.data {
		if v != n.data[i] {
			return false
		}
	}
	return true
}

// EqualApprox reports whether m and n have the same shape and all elements
// within tol of each other.
func (m *Dense) EqualApprox(n *Dense, tol float64) bool {
	if m.rows != n.rows || m.cols != n.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-n.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging; large matrices are elided.
func (m *Dense) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Dense(%d×%d)", m.rows, m.cols)
	if m.rows > 8 || m.cols > 8 {
		return b.String()
	}
	for i := 0; i < m.rows; i++ {
		b.WriteString("\n[")
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.4g", m.At(i, j))
		}
		b.WriteByte(']')
	}
	return b.String()
}
