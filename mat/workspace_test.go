package mat

import (
	"math/rand"
	"testing"
)

// wsRandDense returns an r×c matrix with standard normal entries.
func wsRandDense(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	return m
}

// wsRandSym returns a random symmetric n×n matrix.
func wsRandSym(rng *rand.Rand, n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			m.data[i*n+j] = v
			m.data[j*n+i] = v
		}
	}
	return m
}

func floatsEqual(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s[%d]: %v != %v (not bit-for-bit)", name, i, got[i], want[i])
		}
	}
}

func denseEqual(t *testing.T, name string, got, want *Dense) {
	t.Helper()
	if got.rows != want.rows || got.cols != want.cols {
		t.Fatalf("%s: shape %dx%d != %dx%d", name, got.rows, got.cols, want.rows, want.cols)
	}
	floatsEqual(t, name, got.data, want.data)
}

// TestEigSymIntoDirtyReuseBitForBit cycles matrices of varying sizes
// through ONE workspace — each call leaves the buffers dirty (and sized
// for a different n) for the next — and checks every result is bit-for-bit
// identical to a fresh EigSym.
func TestEigSymIntoDirtyReuseBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	ws := NewWorkspace()
	for _, n := range []int{1, 3, 8, 2, 8, 5, 1, 6, 8} {
		s := wsRandSym(rng, n)
		want := EigSym(s)
		got := EigSymInto(s, ws)
		floatsEqual(t, "Values", got.Values, want.Values)
		denseEqual(t, "Vectors", got.Vectors, want.Vectors)
	}
}

// TestThinSVDIntoDirtyReuseBitForBit does the same for ThinSVDInto across
// both Gram routes (n ≤ d and n > d), including shape flips that leave
// every buffer stale-sized.
func TestThinSVDIntoDirtyReuseBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ws := NewWorkspace()
	shapes := [][2]int{{3, 5}, {5, 3}, {8, 8}, {2, 7}, {7, 2}, {1, 4}, {6, 3}, {3, 6}}
	for _, sh := range shapes {
		a := wsRandDense(rng, sh[0], sh[1])
		want := ThinSVD(a)
		got := ThinSVDInto(a, ws)
		floatsEqual(t, "S", got.S, want.S)
		denseEqual(t, "Vt", got.Vt, want.Vt)
		denseEqual(t, "U", got.U, want.U)
	}
}

// TestThinSVDNoUMatchesThinSVD checks S and Vt agree bit-for-bit with the
// full decomposition, and that U is skipped exactly when n > d.
func TestThinSVDNoUMatchesThinSVD(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	ws := NewWorkspace()
	for _, sh := range [][2]int{{4, 7}, {7, 4}, {5, 5}, {12, 3}} {
		a := wsRandDense(rng, sh[0], sh[1])
		want := ThinSVD(a)
		got := ThinSVDNoU(a, ws)
		floatsEqual(t, "S", got.S, want.S)
		denseEqual(t, "Vt", got.Vt, want.Vt)
		if sh[0] > sh[1] {
			if got.U != nil {
				t.Fatalf("shape %v: ThinSVDNoU returned U for n > d", sh)
			}
		} else {
			denseEqual(t, "U", got.U, want.U)
		}
	}
}

// TestOpSymNormWarmWSDirtyReuseBitForBit runs the warm-started power
// iteration with a fresh and a dirty workspace from identical start
// vectors and demands identical results.
func TestOpSymNormWarmWSDirtyReuseBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	ws := NewWorkspace()
	// Dirty the workspace with unrelated decompositions first.
	EigSymInto(wsRandSym(rng, 7), ws)
	ThinSVDInto(wsRandDense(rng, 9, 4), ws)
	for _, n := range []int{2, 5, 9} {
		s := wsRandSym(rng, n)
		apply := func(x, y []float64) { symMulVec(s, x, y) }
		v1 := make([]float64, n)
		v2 := make([]float64, n)
		seedVec(v1)
		copy(v2, v1)
		want := OpSymNormWarm(n, v1, 6, apply)
		got := OpSymNormWarmWS(n, v2, 6, apply, ws)
		if got != want {
			t.Fatalf("n=%d: norm %v != %v (not bit-for-bit)", n, got, want)
		}
		floatsEqual(t, "warm vector", v2, v1)
	}
}

// TestWorkspaceSteadyStateAllocFree pins the Into entry points at zero
// allocations per call once buffer sizes have stabilized.
func TestWorkspaceSteadyStateAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	ws := NewWorkspace()
	sym := wsRandSym(rng, 12)
	wide := wsRandDense(rng, 6, 12)  // n ≤ d Gram route
	tall := wsRandDense(rng, 24, 12) // n > d Gram route
	v := make([]float64, 12)
	apply := func(x, y []float64) { symMulVec(sym, x, y) }
	// Warm up so every buffer reaches its final size.
	EigSymInto(sym, ws)
	ThinSVDInto(wide, ws)
	ThinSVDNoU(tall, ws)
	OpSymNormWarmWS(12, v, 4, apply, ws)

	cases := []struct {
		name string
		fn   func()
	}{
		{"EigSymInto", func() { EigSymInto(sym, ws) }},
		{"ThinSVDInto", func() { ThinSVDInto(wide, ws) }},
		{"ThinSVDNoU", func() { ThinSVDNoU(tall, ws) }},
		{"OpSymNormWarmWS", func() { OpSymNormWarmWS(12, v, 4, apply, ws) }},
	}
	for _, c := range cases {
		if n := testing.AllocsPerRun(50, c.fn); n != 0 {
			t.Errorf("%s: %v allocs/op at steady state, want 0", c.name, n)
		}
	}
}
