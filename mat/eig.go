package mat

import "math"

// Eigen holds the eigendecomposition of a symmetric matrix S = VᵀΛV where
// the rows of Vectors are orthonormal eigenvectors: S = Σᵢ λᵢ·vᵢᵀvᵢ.
// Values are sorted by decreasing value (not absolute value).
type Eigen struct {
	// Values are the eigenvalues in decreasing order.
	Values []float64
	// Vectors has the eigenvector for Values[i] in row i.
	Vectors *Dense
}

// jacobiSweepsMax bounds the cyclic Jacobi iteration; convergence is
// quadratic, so well under this for any practical dimension.
const jacobiSweepsMax = 60

// EigSym computes the full eigendecomposition of the symmetric matrix s
// using cyclic Jacobi rotations. Only the lower triangle is read;
// asymmetric input is treated as its symmetrized part.
//
// Jacobi is O(d³) per sweep with a handful of sweeps; it is the right
// trade-off here because the protocols decompose d×d covariance
// differences with d ≤ a few thousand, and Jacobi's high relative accuracy
// keeps sketch error measurements trustworthy.
//
// EigSym allocates its working buffers fresh on every call; hot paths that
// decompose repeatedly should hold a Workspace and call EigSymInto.
func EigSym(s *Dense) Eigen {
	return EigSymInto(s, NewWorkspace())
}

// jacobiEig runs cyclic Jacobi sweeps on the symmetric matrix a in place,
// accumulating the rotations into v (whose columns become eigenvectors).
func jacobiEig(a, v *Dense) {
	n := a.rows
	offDiag := func() float64 {
		var s float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s += a.data[i*n+j] * a.data[i*n+j]
			}
		}
		return s
	}
	var frob float64
	for _, x := range a.data {
		frob += x * x
	}
	tol := 1e-28 * (frob + 1e-300)

	for sweep := 0; sweep < jacobiSweepsMax && offDiag() > tol; sweep++ {
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.data[p*n+q]
				if apq == 0 {
					continue
				}
				app := a.data[p*n+p]
				aqq := a.data[q*n+q]
				theta := (aqq - app) / (2 * apq)
				var t float64
				if math.Abs(theta) > 1e150 {
					t = 1 / (2 * theta)
				} else {
					t = math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				}
				c := 1 / math.Sqrt(t*t+1)
				sn := t * c
				rotate(a, v, p, q, c, sn)
			}
		}
	}
}

// rotate applies the Jacobi rotation J(p,q,θ) to a (two-sided) and
// accumulates it into v (one-sided, columns).
func rotate(a, v *Dense, p, q int, c, s float64) {
	n := a.rows
	for i := 0; i < n; i++ {
		aip := a.data[i*n+p]
		aiq := a.data[i*n+q]
		a.data[i*n+p] = c*aip - s*aiq
		a.data[i*n+q] = s*aip + c*aiq
	}
	for j := 0; j < n; j++ {
		apj := a.data[p*n+j]
		aqj := a.data[q*n+j]
		a.data[p*n+j] = c*apj - s*aqj
		a.data[q*n+j] = s*apj + c*aqj
	}
	for i := 0; i < n; i++ {
		vip := v.data[i*n+p]
		viq := v.data[i*n+q]
		v.data[i*n+p] = c*vip - s*viq
		v.data[i*n+q] = s*vip + c*viq
	}
}

// Reconstruct returns Σᵢ values[i]·vᵢᵀvᵢ for the rows vᵢ of vectors —
// the inverse of EigSym up to floating-point error.
func (e Eigen) Reconstruct() *Dense {
	n := e.Vectors.cols
	out := NewDense(n, n)
	for i, lam := range e.Values {
		if lam == 0 {
			continue
		}
		addOuter(out.data, e.Vectors.Row(i), lam)
	}
	return out
}
