package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// genMat draws a small random matrix with entries in [-10, 10].
func genMat(rng *rand.Rand, maxDim int) *Dense {
	r := 1 + rng.Intn(maxDim)
	c := 1 + rng.Intn(maxDim)
	m := NewDense(r, c)
	for i := range m.data {
		m.data[i] = (rng.Float64() - 0.5) * 20
	}
	return m
}

func quickCfg(seed int64) *quick.Config {
	return &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(seed))}
}

func TestPropTransposeMulIdentity(t *testing.T) {
	// Property: (A·B)ᵀ = Bᵀ·Aᵀ.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := genMat(rng, 6)
		b := NewDense(a.Cols(), 1+rng.Intn(6))
		for i := range b.data {
			b.data[i] = rng.NormFloat64()
		}
		l := Mul(a, b).T()
		r := Mul(b.T(), a.T())
		return l.EqualApprox(r, 1e-9)
	}
	if err := quick.Check(f, quickCfg(100)); err != nil {
		t.Fatal(err)
	}
}

func TestPropGramPSD(t *testing.T) {
	// Property: all eigenvalues of AᵀA are ≥ −tiny.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := genMat(rng, 7)
		e := EigSym(Gram(a))
		for _, v := range e.Values {
			if v < -1e-8*(1+FrobSq(a)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(101)); err != nil {
		t.Fatal(err)
	}
}

func TestPropSVDReconstruct(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := genMat(rng, 8)
		s := ThinSVD(a)
		return s.Reconstruct().EqualApprox(a, 1e-7*(1+Frob(a)))
	}
	if err := quick.Check(f, quickCfg(102)); err != nil {
		t.Fatal(err)
	}
}

func TestPropSpectralNormBounds(t *testing.T) {
	// Property: ‖A‖₂ ≤ ‖A‖_F ≤ √rank·‖A‖₂ ≤ √min(n,d)·‖A‖₂.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := genMat(rng, 7)
		sn := SpectralNorm(a)
		fn := Frob(a)
		k := a.Rows()
		if a.Cols() < k {
			k = a.Cols()
		}
		return sn <= fn*(1+1e-9) && fn <= math.Sqrt(float64(k))*sn*(1+1e-6)+1e-12
	}
	if err := quick.Check(f, quickCfg(103)); err != nil {
		t.Fatal(err)
	}
}

func TestPropEigReconstructAndOrthonormal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		m := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := (rng.Float64() - 0.5) * 10
				m.Set(i, j, v)
				m.Set(j, i, v)
			}
		}
		e := EigSym(m)
		return IsOrthonormalRows(e.Vectors, 1e-8) &&
			e.Reconstruct().EqualApprox(m, 1e-8*(1+Frob(m)))
	}
	if err := quick.Check(f, quickCfg(104)); err != nil {
		t.Fatal(err)
	}
}

func TestPropQRReconstruct(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := genMat(rng, 8)
		qr := HouseholderQR(a)
		return Mul(qr.Q, qr.R).EqualApprox(a, 1e-8*(1+Frob(a)))
	}
	if err := quick.Check(f, quickCfg(105)); err != nil {
		t.Fatal(err)
	}
}

func TestPropTriangleInequalitySpectral(t *testing.T) {
	// Property: ‖A+B‖₂ ≤ ‖A‖₂ + ‖B‖₂ for symmetric A, B — the inequality
	// the deterministic protocols' global error bound rests on.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		mk := func() *Dense {
			m := NewDense(n, n)
			for i := 0; i < n; i++ {
				for j := i; j < n; j++ {
					v := (rng.Float64() - 0.5) * 8
					m.Set(i, j, v)
					m.Set(j, i, v)
				}
			}
			return m
		}
		a, b := mk(), mk()
		return SymSpectralNorm(Add(a, b)) <= SymSpectralNorm(a)+SymSpectralNorm(b)+1e-7
	}
	if err := quick.Check(f, quickCfg(106)); err != nil {
		t.Fatal(err)
	}
}

func TestPropStackGramAdditive(t *testing.T) {
	// Property: [A;B]ᵀ[A;B] = AᵀA + BᵀB — why per-site sketches sum.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(5)
		a := NewDense(1+rng.Intn(5), d)
		b := NewDense(1+rng.Intn(5), d)
		for i := range a.data {
			a.data[i] = rng.NormFloat64()
		}
		for i := range b.data {
			b.data[i] = rng.NormFloat64()
		}
		return Gram(Stack(a, b)).EqualApprox(Add(Gram(a), Gram(b)), 1e-9)
	}
	if err := quick.Check(f, quickCfg(107)); err != nil {
		t.Fatal(err)
	}
}

func TestPropPSDSqrtRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := genMat(rng, 6)
		c := Gram(a)
		return Gram(PSDSqrt(c)).EqualApprox(c, 1e-7*(1+Frob(c)))
	}
	if err := quick.Check(f, quickCfg(108)); err != nil {
		t.Fatal(err)
	}
}
