package mat

import "testing"

func TestWorkspacePoolRecycles(t *testing.T) {
	p := NewWorkspacePool(2)
	ws := p.Get()
	if ws == nil {
		t.Fatal("Get returned nil")
	}
	if p.Idle() != 0 {
		t.Fatalf("Idle = %d after Get", p.Idle())
	}
	p.Put(ws)
	if p.Idle() != 1 {
		t.Fatalf("Idle = %d after Put", p.Idle())
	}
	if got := p.Get(); got != ws {
		t.Fatal("Get did not return the pooled workspace")
	}
}

func TestWorkspacePoolCap(t *testing.T) {
	p := NewWorkspacePool(2)
	for i := 0; i < 5; i++ {
		p.Put(NewWorkspace())
	}
	if p.Idle() != 2 {
		t.Fatalf("Idle = %d, want cap 2", p.Idle())
	}
}

func TestWorkspacePoolNilSafe(t *testing.T) {
	var p *WorkspacePool
	ws := p.Get()
	if ws == nil {
		t.Fatal("nil pool Get returned nil workspace")
	}
	p.Put(ws)
	if p.Idle() != 0 {
		t.Fatalf("nil pool Idle = %d", p.Idle())
	}
	// Nil workspace is likewise a no-op.
	NewWorkspacePool(1).Put(nil)
}

// TestWorkspacePoolCrossDimension verifies a workspace recycled from a
// small-dimension user serves a larger one — buffers regrow on demand, so
// one pool covers heterogeneous tenants.
func TestWorkspacePoolCrossDimension(t *testing.T) {
	p := NewWorkspacePool(0)
	ws := p.Get()
	small := NewDense(3, 3)
	small.Set(0, 0, 1)
	EigSymInto(small, ws)
	p.Put(ws)
	ws2 := p.Get()
	big := NewDense(8, 8)
	for i := 0; i < 8; i++ {
		big.Set(i, i, float64(i+1))
	}
	eig := EigSymInto(big, ws2)
	if got := eig.Values[0]; got < 7.999 || got > 8.001 {
		t.Fatalf("recycled workspace top eigenvalue = %g, want 8", got)
	}
}
