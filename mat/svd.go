package mat

import (
	"math"
	"sort"
)

// SVD holds a thin singular value decomposition A = U·diag(S)·Vt where U is
// n×k, Vt is k×d, k = min(n, d), and S is sorted in decreasing order. The
// rows of Vt are the right singular vectors.
type SVD struct {
	U  *Dense
	S  []float64
	Vt *Dense
}

// ThinSVD computes a thin SVD of a via the Gram matrix of the smaller side:
// for n ≤ d it eigendecomposes A·Aᵀ (n×n), otherwise Aᵀ·A (d×d). This is
// the standard choice for sketching workloads where one side is small
// (FD sketches are ℓ×d with ℓ ≪ d, covariance differences are d×d).
//
// The Gram route squares the condition number, so singular values below
// about 1e-8·σ_max lose accuracy; sketch shrinking only consumes σ², for
// which this is exact enough. Use JacobiSVD when full relative accuracy of
// small singular values matters.
// ThinSVD allocates its factors and working buffers fresh on every call;
// hot paths that decompose repeatedly should hold a Workspace and call
// ThinSVDInto (or ThinSVDNoU when the left singular vectors are unused).
func ThinSVD(a *Dense) SVD {
	return ThinSVDInto(a, NewWorkspace())
}

func svdCutoff(s []float64) float64 {
	var max float64
	for _, v := range s {
		if v > max {
			max = v
		}
	}
	return max * 1e-12
}

// JacobiSVD computes a thin SVD of a using one-sided Jacobi rotations on
// the rows of a, which orthogonalizes all row pairs. It delivers high
// relative accuracy for small singular values at higher cost than ThinSVD.
// Requires n ≤ d is NOT required; for n > d it falls back to ThinSVD
// (Jacobi on the n² row pairs would be wasteful).
func JacobiSVD(a *Dense) SVD {
	n, d := a.rows, a.cols
	if n == 0 || d == 0 {
		return SVD{U: NewDense(n, 0), S: nil, Vt: NewDense(0, d)}
	}
	if n > d {
		return ThinSVD(a)
	}
	// Work on W = a copy of A; rotate pairs of ROWS until mutually
	// orthogonal: W = Σ·Vt with accumulated rotations forming Uᵀ.
	w := a.Clone()
	ut := Identity(n) // accumulates rotations; rows of ut are rows of Uᵀ
	for sweep := 0; sweep < jacobiSweepsMax; sweep++ {
		converged := true
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				wp, wq := w.Row(p), w.Row(q)
				alpha := VecNormSq(wp)
				beta := VecNormSq(wq)
				gamma := Dot(wp, wq)
				if math.Abs(gamma) <= 1e-15*math.Sqrt(alpha*beta)+1e-300 {
					continue
				}
				converged = false
				zeta := (beta - alpha) / (2 * gamma)
				t := math.Copysign(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				rotateRows(wp, wq, c, s)
				rotateRows(ut.Row(p), ut.Row(q), c, s)
			}
		}
		if converged {
			break
		}
	}
	type rowS struct {
		idx int
		s   float64
	}
	rs := make([]rowS, n)
	for i := 0; i < n; i++ {
		rs[i] = rowS{i, VecNorm(w.Row(i))}
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].s > rs[j].s })
	out := SVD{U: NewDense(n, n), S: make([]float64, n), Vt: NewDense(n, d)}
	cut := rs[0].s * 1e-14
	for k, r := range rs {
		out.S[k] = r.s
		if r.s > cut {
			inv := 1 / r.s
			wr := w.Row(r.idx)
			vk := out.Vt.Row(k)
			for j := range wr {
				vk[j] = wr[j] * inv
			}
		} else {
			out.S[k] = 0
		}
		// Column k of U = row r.idx of ut.
		for i := 0; i < n; i++ {
			out.U.data[i*n+k] = ut.data[r.idx*n+i]
		}
	}
	return out
}

// rotateRows applies [c -s; s c] to the row pair (p, q).
func rotateRows(p, q []float64, c, s float64) {
	for j := range p {
		pj, qj := p[j], q[j]
		p[j] = c*pj - s*qj
		q[j] = s*pj + c*qj
	}
}

// Reconstruct returns U·diag(S)·Vt, the matrix the decomposition factors.
func (s SVD) Reconstruct() *Dense {
	k := len(s.S)
	us := NewDense(s.U.rows, k)
	for i := 0; i < s.U.rows; i++ {
		for j := 0; j < k; j++ {
			us.data[i*k+j] = s.U.data[i*s.U.cols+j] * s.S[j]
		}
	}
	return Mul(us, s.Vt.SliceRows(0, k))
}

// PSDSqrt returns a matrix square root B of the symmetric positive
// semidefinite matrix c, i.e. a k×d matrix with BᵀB = c, where k is the
// numerical rank. Negative eigenvalues (from accumulated floating-point or
// protocol drift) are clipped to zero, matching the paper's QUERY step
// B = Σ^{1/2}·Vᵀ.
func PSDSqrt(c *Dense) *Dense {
	if c.rows != c.cols {
		panic("mat: PSDSqrt of non-square matrix")
	}
	eig := EigSym(c)
	d := c.rows
	k := 0
	for _, lam := range eig.Values {
		if lam > 0 {
			k++
		}
	}
	out := NewDense(k, d)
	r := 0
	for i, lam := range eig.Values {
		if lam <= 0 {
			continue
		}
		s := math.Sqrt(lam)
		vi := eig.Vectors.Row(i)
		oi := out.Row(r)
		for j := range vi {
			oi[j] = s * vi[j]
		}
		r++
	}
	return out
}
