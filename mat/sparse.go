package mat

import "fmt"

// SparseVec is a d-dimensional vector stored as (index, value) pairs with
// indices strictly increasing. Text-like rows (WIKI's tf-idf vectors) are
// >80% zeros; Gram updates over the sparse form cost nnz² instead of d²
// multiply-adds, which is what makes exact-window evaluation of the
// large-d experiments affordable.
type SparseVec struct {
	N   int
	Idx []int32
	Val []float64
}

// ToSparse converts a dense vector, returning nil when the vector's fill
// ratio exceeds maxFill (densities near 1 make the sparse form slower).
func ToSparse(v []float64, maxFill float64) *SparseVec {
	nnz := 0
	for _, x := range v {
		if x != 0 {
			nnz++
		}
	}
	if float64(nnz) > maxFill*float64(len(v)) {
		return nil
	}
	s := &SparseVec{N: len(v), Idx: make([]int32, 0, nnz), Val: make([]float64, 0, nnz)}
	for i, x := range v {
		if x != 0 {
			s.Idx = append(s.Idx, int32(i))
			s.Val = append(s.Val, x)
		}
	}
	return s
}

// NNZ returns the number of stored nonzeros.
func (s *SparseVec) NNZ() int { return len(s.Idx) }

// NormSq returns ‖s‖².
func (s *SparseVec) NormSq() float64 {
	var t float64
	for _, x := range s.Val {
		t += x * x
	}
	return t
}

// Dot returns the inner product with a dense vector of matching dimension.
func (s *SparseVec) Dot(x []float64) float64 {
	if len(x) != s.N {
		panic(fmt.Sprintf("mat: sparse Dot dimension %d vs %d", len(x), s.N))
	}
	var t float64
	for k, i := range s.Idx {
		t += s.Val[k] * x[i]
	}
	return t
}

// AxpyInto accumulates y += a·s for dense y of matching dimension.
func (s *SparseVec) AxpyInto(a float64, y []float64) {
	if len(y) != s.N {
		panic(fmt.Sprintf("mat: sparse Axpy dimension %d vs %d", len(y), s.N))
	}
	for k, i := range s.Idx {
		y[i] += a * s.Val[k]
	}
}

// OuterAddInto accumulates dst += scale·sᵀs, touching only the nnz²
// entries the outer product actually has. dst must be N×N.
func (s *SparseVec) OuterAddInto(dst *Dense, scale float64) {
	if dst.rows != s.N || dst.cols != s.N {
		panic(fmt.Sprintf("mat: sparse OuterAddInto dst %d×%d, want %d×%d", dst.rows, dst.cols, s.N, s.N))
	}
	d := dst.cols
	for a, i := range s.Idx {
		c := scale * s.Val[a]
		if c == 0 {
			continue
		}
		row := dst.data[int(i)*d : int(i)*d+d]
		for b, j := range s.Idx {
			row[j] += c * s.Val[b]
		}
	}
}

// Dense materializes the vector.
func (s *SparseVec) Dense() []float64 {
	v := make([]float64, s.N)
	for k, i := range s.Idx {
		v[i] = s.Val[k]
	}
	return v
}
