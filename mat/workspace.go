package mat

import "math"

// Workspace holds reusable scratch buffers for the decomposition entry
// points (EigSymInto, ThinSVDInto, ThinSVDNoU) and the warm-started power
// iteration (OpSymNormWarmWS). A Workspace may be reused dirty — every
// Into call fully initializes the buffers it reads — and grows its buffers
// monotonically, so a caller that decomposes fixed-size matrices (an FD
// sketch shrinking its 2ℓ×d buffer, a protocol site eigendecomposing d×d
// differences) reaches a steady state with zero allocations per call.
//
// Ownership rules:
//
//   - The Eigen/SVD values returned by the Into functions alias the
//     workspace; they are valid only until the next Into call on the same
//     workspace. Callers that need the factors longer must copy them.
//   - A Workspace is not safe for concurrent use. Give each goroutine (in
//     the parallel pipeline: each site, since one site's work is
//     serialized on one lane) its own Workspace.
//   - The zero value is ready to use; NewWorkspace exists for symmetry.
type Workspace struct {
	// Jacobi eigendecomposition scratch (EigSymInto).
	eigA Dense // symmetrized working copy, rotated in place
	eigV Dense // rotation accumulator
	idx  []int // eigenvalue sort permutation

	// Eigendecomposition outputs, aliased by the returned Eigen.
	vals []float64
	vecs Dense

	// Thin-SVD scratch and outputs, aliased by the returned SVD.
	gram Dense
	u    Dense
	s    []float64
	vt   Dense

	// Power-iteration scratch (OpSymNormWarmWS).
	pw    []float64
	pseed []float64
}

// NewWorkspace returns an empty workspace. Buffers are allocated lazily on
// first use and reused afterwards.
func NewWorkspace() *Workspace { return &Workspace{} }

// growFloats returns s resized to n, reusing its backing array when the
// capacity suffices. Contents are stale; callers must overwrite.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// growInts is growFloats for int slices.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// EigSymInto computes the eigendecomposition of the symmetric matrix s
// like EigSym, but decomposes into ws-owned buffers: at steady state (same
// dimension as the previous call) it performs no allocations. The returned
// Eigen aliases ws and is valid until the next Into call on ws.
//
// The result is bit-for-bit identical to EigSym(s): EigSym is this
// function run on a fresh workspace, and every buffer read is fully
// initialized first, so prior contents cannot leak into the output.
func EigSymInto(s *Dense, ws *Workspace) Eigen {
	if s.rows != s.cols {
		panic("mat: EigSym of non-square matrix")
	}
	n := s.rows
	ws.eigA.reshape(n, n)
	a := &ws.eigA
	a.CopyFrom(s)
	// Symmetrize to guard against drift in accumulated covariance updates.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := 0.5 * (a.data[i*n+j] + a.data[j*n+i])
			a.data[i*n+j] = v
			a.data[j*n+i] = v
		}
	}
	ws.eigV.reshape(n, n)
	v := &ws.eigV
	v.Zero()
	for i := 0; i < n; i++ {
		v.data[i*n+i] = 1
	}

	jacobiEig(a, v)

	ws.vals = growFloats(ws.vals, n)
	ws.vecs.reshape(n, n)
	eig := Eigen{Values: ws.vals, Vectors: &ws.vecs}
	ws.idx = growInts(ws.idx, n)
	idx := ws.idx
	for i := range idx {
		idx[i] = i
	}
	// Insertion sort by decreasing diagonal value: n is small (sketch and
	// covariance dimensions), the permutation is nearly sorted after
	// Jacobi, and unlike sort.Slice this allocates nothing.
	for i := 1; i < n; i++ {
		k := idx[i]
		key := a.data[k*n+k]
		j := i - 1
		for j >= 0 && a.data[idx[j]*n+idx[j]] < key {
			idx[j+1] = idx[j]
			j--
		}
		idx[j+1] = k
	}
	for r, i := range idx {
		eig.Values[r] = a.data[i*n+i]
		// Eigenvectors are the columns of the accumulated rotation matrix;
		// store them as rows of the output.
		for j := 0; j < n; j++ {
			eig.Vectors.data[r*n+j] = v.data[j*n+i]
		}
	}
	return eig
}

// ThinSVDInto computes the thin SVD of a like ThinSVD, but decomposes into
// ws-owned buffers: at steady state it performs no allocations. The
// returned SVD aliases ws and is valid until the next Into call on ws.
// The result is bit-for-bit identical to ThinSVD(a).
func ThinSVDInto(a *Dense, ws *Workspace) SVD {
	return thinSVDInto(a, ws, true)
}

// ThinSVDNoU is ThinSVDInto without the left singular vectors: for n > d
// inputs it skips the n×d U = A·V·Σ⁺ solve (the dominant cost for tall
// inputs) and returns U == nil. For n ≤ d inputs U falls out of the Gram
// route for free and is returned as usual. S and Vt are bit-for-bit
// identical to ThinSVD's. FD shrinking consumes only S and Vt, which is
// exactly what this variant serves.
func ThinSVDNoU(a *Dense, ws *Workspace) SVD {
	return thinSVDInto(a, ws, false)
}

func thinSVDInto(a *Dense, ws *Workspace, needU bool) SVD {
	n, d := a.rows, a.cols
	if n == 0 || d == 0 {
		ws.u.reshape(n, 0)
		ws.vt.reshape(0, d)
		return SVD{U: &ws.u, S: nil, Vt: &ws.vt}
	}
	if n <= d {
		// G = A·Aᵀ = U·Σ²·Uᵀ, then Vt = Σ⁺·Uᵀ·A.
		ws.gram.reshape(n, n)
		g := &ws.gram
		for i := 0; i < n; i++ {
			ri := a.Row(i)
			for j := i; j < n; j++ {
				v := Dot(ri, a.Row(j))
				g.data[i*n+j] = v
				g.data[j*n+i] = v
			}
		}
		eig := EigSymInto(g, ws)
		ws.s = growFloats(ws.s, n)
		s := ws.s
		ws.u.reshape(n, n)
		u := &ws.u
		for k := 0; k < n; k++ {
			lam := eig.Values[k]
			if lam < 0 {
				lam = 0
			}
			s[k] = math.Sqrt(lam)
			// Column k of U is eigenvector k.
			for i := 0; i < n; i++ {
				u.data[i*n+k] = eig.Vectors.data[k*n+i]
			}
		}
		ws.vt.reshape(n, d)
		vt := &ws.vt
		vt.Zero() // rows below the cutoff stay zero, and Axpy accumulates
		cutoff := svdCutoff(s)
		for k := 0; k < n; k++ {
			if s[k] <= cutoff {
				s[k] = 0
				continue // leave a zero row in Vt
			}
			inv := 1 / s[k]
			vtk := vt.Row(k)
			for i := 0; i < n; i++ {
				uik := u.data[i*n+k]
				if uik == 0 {
					continue
				}
				Axpy(inv*uik, a.Row(i), vtk)
			}
		}
		return SVD{U: u, S: s, Vt: vt}
	}
	// n > d: G = Aᵀ·A = V·Σ²·Vᵀ, then U = A·V·Σ⁺.
	ws.gram.reshape(d, d)
	GramInto(&ws.gram, a)
	eig := EigSymInto(&ws.gram, ws)
	ws.s = growFloats(ws.s, d)
	s := ws.s
	ws.vt.reshape(d, d)
	vt := &ws.vt
	for k := 0; k < d; k++ {
		lam := eig.Values[k]
		if lam < 0 {
			lam = 0
		}
		s[k] = math.Sqrt(lam)
		copy(vt.Row(k), eig.Vectors.Row(k))
	}
	cutoff := svdCutoff(s)
	for k := 0; k < d; k++ {
		if s[k] <= cutoff {
			s[k] = 0
		}
	}
	if !needU {
		return SVD{U: nil, S: s, Vt: vt}
	}
	ws.u.reshape(n, d)
	u := &ws.u
	u.Zero() // columns with s[k] == 0 stay zero
	for i := 0; i < n; i++ {
		ai := a.Row(i)
		ui := u.Row(i)
		for k := 0; k < d; k++ {
			if s[k] == 0 {
				continue
			}
			ui[k] = Dot(ai, vt.Row(k)) / s[k]
		}
	}
	return SVD{U: u, S: s, Vt: vt}
}

// OpSymNormWarmWS is OpSymNormWarm with workspace-owned iteration scratch:
// at steady state it performs no allocations. See OpSymNormWarm for the
// warm-start semantics; v is still caller-owned and updated in place.
func OpSymNormWarmWS(d int, v []float64, iters int, apply func(x, y []float64), ws *Workspace) float64 {
	if d == 0 {
		return 0
	}
	if len(v) != d {
		panic("mat: OpSymNormWarm vector length mismatch")
	}
	if VecNorm(v) == 0 {
		seedVec(v)
	} else {
		// Blend in a full-support component so a stale v that happens to
		// be an exact eigenvector of the new operator (orthogonal to the
		// dominant direction) cannot trap the iteration.
		ws.pseed = growFloats(ws.pseed, d)
		seed := ws.pseed
		seedVec(seed)
		for i := range v {
			v[i] = 0.95*v[i] + 0.05*seed[i]
		}
		n := VecNorm(v)
		for i := range v {
			v[i] /= n
		}
	}
	ws.pw = growFloats(ws.pw, d)
	w := ws.pw
	var nrm float64
	for iter := 0; iter < iters; iter++ {
		apply(v, w)
		nrm = VecNorm(w)
		if nrm == 0 {
			perturb(v, iter)
			continue
		}
		for i := range v {
			v[i] = w[i] / nrm
		}
	}
	return nrm
}
