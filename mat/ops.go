package mat

import "fmt"

// Add returns a + b as a new matrix. Dimensions must match.
func Add(a, b *Dense) *Dense {
	checkSame(a, b, "Add")
	out := NewDense(a.rows, a.cols)
	for i, v := range a.data {
		out.data[i] = v + b.data[i]
	}
	return out
}

// Sub returns a - b as a new matrix. Dimensions must match.
func Sub(a, b *Dense) *Dense {
	checkSame(a, b, "Sub")
	out := NewDense(a.rows, a.cols)
	for i, v := range a.data {
		out.data[i] = v - b.data[i]
	}
	return out
}

// AddInPlace sets a += b. Dimensions must match.
func AddInPlace(a, b *Dense) {
	checkSame(a, b, "AddInPlace")
	for i, v := range b.data {
		a.data[i] += v
	}
}

// SubInPlace sets a -= b. Dimensions must match.
func SubInPlace(a, b *Dense) {
	checkSame(a, b, "SubInPlace")
	for i, v := range b.data {
		a.data[i] -= v
	}
}

// Scale returns s*a as a new matrix.
func Scale(s float64, a *Dense) *Dense {
	out := NewDense(a.rows, a.cols)
	for i, v := range a.data {
		out.data[i] = s * v
	}
	return out
}

// ScaleInPlace sets a *= s.
func ScaleInPlace(a *Dense, s float64) {
	for i := range a.data {
		a.data[i] *= s
	}
}

func checkSame(a, b *Dense, op string) {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("mat: %s dimension mismatch %d×%d vs %d×%d", op, a.rows, a.cols, b.rows, b.cols))
	}
}

// Mul returns the matrix product a*b as a new matrix.
// It panics unless a.Cols() == b.Rows().
func Mul(a, b *Dense) *Dense {
	out := NewDense(a.rows, b.cols)
	MulInto(out, a, b)
	return out
}

// MulInto sets dst = a*b without allocating. dst must be a.Rows()×b.Cols()
// and must not alias a or b. The previous contents of dst are overwritten.
//
// The kernel streams b's rows (ikj order) and register-blocks two output
// rows at a time so each row of b is read once per pair of output rows.
func MulInto(dst, a, b *Dense) {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul inner dimension mismatch %d×%d · %d×%d", a.rows, a.cols, b.rows, b.cols))
	}
	if dst.rows != a.rows || dst.cols != b.cols {
		panic(fmt.Sprintf("mat: MulInto dst %d×%d, want %d×%d", dst.rows, dst.cols, a.rows, b.cols))
	}
	dst.Zero()
	n, m := a.rows, b.cols
	i := 0
	for ; i+2 <= n; i += 2 {
		a0 := a.data[i*a.cols : (i+1)*a.cols]
		a1 := a.data[(i+1)*a.cols : (i+2)*a.cols]
		o0 := dst.data[i*m : (i+1)*m]
		o1 := dst.data[(i+1)*m : (i+2)*m]
		for k := range a0 {
			brow := b.data[k*m : (k+1)*m]
			axpy2(a0[k], a1[k], brow, o0, o1)
		}
	}
	if i < n {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := dst.data[i*m : (i+1)*m]
		for k, av := range arow {
			axpyKernel(av, b.data[k*m:(k+1)*m], orow)
		}
	}
}

// MulVec returns the matrix-vector product a*x.
// It panics unless len(x) == a.Cols().
func MulVec(a *Dense, x []float64) []float64 {
	out := make([]float64, a.rows)
	MulVecInto(out, a, x)
	return out
}

// MulVecInto sets dst = a*x without allocating. dst must have length
// a.Rows() and must not alias x.
func MulVecInto(dst []float64, a *Dense, x []float64) {
	if len(x) != a.cols {
		panic(fmt.Sprintf("mat: MulVec length %d != cols %d", len(x), a.cols))
	}
	if len(dst) != a.rows {
		panic(fmt.Sprintf("mat: MulVecInto dst length %d != rows %d", len(dst), a.rows))
	}
	for i := 0; i < a.rows; i++ {
		dst[i] = Dot(a.data[i*a.cols:(i+1)*a.cols], x)
	}
}

// MulTVec returns aᵀ*x. It panics unless len(x) == a.Rows().
func MulTVec(a *Dense, x []float64) []float64 {
	out := make([]float64, a.cols)
	MulTVecInto(out, a, x)
	return out
}

// MulTVecInto sets dst = aᵀ*x without allocating. dst must have length
// a.Cols() and must not alias x.
func MulTVecInto(dst []float64, a *Dense, x []float64) {
	if len(x) != a.rows {
		panic(fmt.Sprintf("mat: MulTVec length %d != rows %d", len(x), a.rows))
	}
	if len(dst) != a.cols {
		panic(fmt.Sprintf("mat: MulTVecInto dst length %d != cols %d", len(dst), a.cols))
	}
	for i := range dst {
		dst[i] = 0
	}
	for i, xv := range x {
		axpyKernel(xv, a.data[i*a.cols:(i+1)*a.cols], dst)
	}
}

// Gram returns aᵀa, the d×d covariance (Gram) matrix of the rows of a.
// The result is symmetric positive semidefinite.
func Gram(a *Dense) *Dense {
	out := NewDense(a.cols, a.cols)
	GramAdd(out, a, 1)
	return out
}

// GramInto sets dst = aᵀa without allocating. dst must be
// a.Cols()×a.Cols(); its previous contents are overwritten.
func GramInto(dst *Dense, a *Dense) {
	d := a.cols
	if dst.rows != d || dst.cols != d {
		panic(fmt.Sprintf("mat: GramInto dst %d×%d, want %d×%d", dst.rows, dst.cols, d, d))
	}
	dst.Zero()
	GramAdd(dst, a, 1)
}

// GramAdd accumulates dst += s · aᵀa. dst must be a.Cols()×a.Cols().
func GramAdd(dst *Dense, a *Dense, s float64) {
	d := a.cols
	if dst.rows != d || dst.cols != d {
		panic(fmt.Sprintf("mat: GramAdd dst %d×%d, want %d×%d", dst.rows, dst.cols, d, d))
	}
	for i := 0; i < a.rows; i++ {
		row := a.data[i*d : (i+1)*d]
		addOuter(dst.data, row, s)
	}
}

// OuterAdd accumulates dst += s · vᵀv for a row vector v.
// dst must be len(v)×len(v).
func OuterAdd(dst *Dense, v []float64, s float64) {
	if dst.rows != len(v) || dst.cols != len(v) {
		panic(fmt.Sprintf("mat: OuterAdd dst %d×%d, want %d×%d", dst.rows, dst.cols, len(v), len(v)))
	}
	addOuter(dst.data, v, s)
}

// addOuter adds s·vᵀv into the row-major d×d buffer dst.
//
// Dense data is the common case in the sketch hot path, so there is no
// zero-skip branch here: each row update is a straight unrolled axpy.
// Sparse rows take the nnz²-cost path in sparse.go instead.
func addOuter(dst []float64, v []float64, s float64) {
	d := len(v)
	for i, vi := range v {
		axpyKernel(s*vi, v, dst[i*d:i*d+d])
	}
}

// Dot returns the inner product of x and y. Lengths must match.
//
// The loop is 4-way unrolled with independent accumulators; the result is
// deterministic but differs from a naive left-to-right sum by O(ε)
// rounding.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		x4 := x[i : i+4 : i+4]
		y4 := y[i : i+4 : i+4]
		s0 += x4[0] * y4[0]
		s1 += x4[1] * y4[1]
		s2 += x4[2] * y4[2]
		s3 += x4[3] * y4[3]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < len(x); i++ {
		s += x[i] * y[i]
	}
	return s
}

// Axpy sets y += a*x. Lengths must match.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	axpyKernel(a, x, y)
}

// axpyKernel is the unchecked 4-way unrolled y += a*x kernel; callers
// guarantee len(y) >= len(x).
func axpyKernel(a float64, x, y []float64) {
	i := 0
	for ; i+4 <= len(x); i += 4 {
		x4 := x[i : i+4 : i+4]
		y4 := y[i : i+4 : i+4]
		y4[0] += a * x4[0]
		y4[1] += a * x4[1]
		y4[2] += a * x4[2]
		y4[3] += a * x4[3]
	}
	for ; i < len(x); i++ {
		y[i] += a * x[i]
	}
}

// axpy2 sets y0 += c0*x and y1 += c1*x in one pass over x, the 2-row
// register block MulInto is built on.
func axpy2(c0, c1 float64, x, y0, y1 []float64) {
	i := 0
	for ; i+4 <= len(x); i += 4 {
		x4 := x[i : i+4 : i+4]
		a4 := y0[i : i+4 : i+4]
		b4 := y1[i : i+4 : i+4]
		a4[0] += c0 * x4[0]
		b4[0] += c1 * x4[0]
		a4[1] += c0 * x4[1]
		b4[1] += c1 * x4[1]
		a4[2] += c0 * x4[2]
		b4[2] += c1 * x4[2]
		a4[3] += c0 * x4[3]
		b4[3] += c1 * x4[3]
	}
	for ; i < len(x); i++ {
		y0[i] += c0 * x[i]
		y1[i] += c1 * x[i]
	}
}

// ScaleVec multiplies x by s in place.
func ScaleVec(s float64, x []float64) {
	for i := range x {
		x[i] *= s
	}
}
