package mat

import "fmt"

// Add returns a + b as a new matrix. Dimensions must match.
func Add(a, b *Dense) *Dense {
	checkSame(a, b, "Add")
	out := NewDense(a.rows, a.cols)
	for i, v := range a.data {
		out.data[i] = v + b.data[i]
	}
	return out
}

// Sub returns a - b as a new matrix. Dimensions must match.
func Sub(a, b *Dense) *Dense {
	checkSame(a, b, "Sub")
	out := NewDense(a.rows, a.cols)
	for i, v := range a.data {
		out.data[i] = v - b.data[i]
	}
	return out
}

// AddInPlace sets a += b. Dimensions must match.
func AddInPlace(a, b *Dense) {
	checkSame(a, b, "AddInPlace")
	for i, v := range b.data {
		a.data[i] += v
	}
}

// SubInPlace sets a -= b. Dimensions must match.
func SubInPlace(a, b *Dense) {
	checkSame(a, b, "SubInPlace")
	for i, v := range b.data {
		a.data[i] -= v
	}
}

// Scale returns s*a as a new matrix.
func Scale(s float64, a *Dense) *Dense {
	out := NewDense(a.rows, a.cols)
	for i, v := range a.data {
		out.data[i] = s * v
	}
	return out
}

// ScaleInPlace sets a *= s.
func ScaleInPlace(a *Dense, s float64) {
	for i := range a.data {
		a.data[i] *= s
	}
}

func checkSame(a, b *Dense, op string) {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("mat: %s dimension mismatch %d×%d vs %d×%d", op, a.rows, a.cols, b.rows, b.cols))
	}
}

// Mul returns the matrix product a*b as a new matrix.
// It panics unless a.Cols() == b.Rows().
func Mul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul inner dimension mismatch %d×%d · %d×%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := NewDense(a.rows, b.cols)
	// ikj loop order keeps the inner loop streaming over contiguous rows.
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := out.data[i*b.cols : (i+1)*b.cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product a*x.
// It panics unless len(x) == a.Cols().
func MulVec(a *Dense, x []float64) []float64 {
	if len(x) != a.cols {
		panic(fmt.Sprintf("mat: MulVec length %d != cols %d", len(x), a.cols))
	}
	out := make([]float64, a.rows)
	for i := 0; i < a.rows; i++ {
		out[i] = Dot(a.data[i*a.cols:(i+1)*a.cols], x)
	}
	return out
}

// MulTVec returns aᵀ*x. It panics unless len(x) == a.Rows().
func MulTVec(a *Dense, x []float64) []float64 {
	if len(x) != a.rows {
		panic(fmt.Sprintf("mat: MulTVec length %d != rows %d", len(x), a.rows))
	}
	out := make([]float64, a.cols)
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		row := a.data[i*a.cols : (i+1)*a.cols]
		for j, v := range row {
			out[j] += xv * v
		}
	}
	return out
}

// Gram returns aᵀa, the d×d covariance (Gram) matrix of the rows of a.
// The result is symmetric positive semidefinite.
func Gram(a *Dense) *Dense {
	out := NewDense(a.cols, a.cols)
	GramAdd(out, a, 1)
	return out
}

// GramAdd accumulates dst += s · aᵀa. dst must be a.Cols()×a.Cols().
func GramAdd(dst *Dense, a *Dense, s float64) {
	d := a.cols
	if dst.rows != d || dst.cols != d {
		panic(fmt.Sprintf("mat: GramAdd dst %d×%d, want %d×%d", dst.rows, dst.cols, d, d))
	}
	for i := 0; i < a.rows; i++ {
		row := a.data[i*d : (i+1)*d]
		addOuter(dst.data, row, s)
	}
}

// OuterAdd accumulates dst += s · vᵀv for a row vector v.
// dst must be len(v)×len(v).
func OuterAdd(dst *Dense, v []float64, s float64) {
	if dst.rows != len(v) || dst.cols != len(v) {
		panic(fmt.Sprintf("mat: OuterAdd dst %d×%d, want %d×%d", dst.rows, dst.cols, len(v), len(v)))
	}
	addOuter(dst.data, v, s)
}

// addOuter adds s·vᵀv into the row-major d×d buffer dst.
func addOuter(dst []float64, v []float64, s float64) {
	d := len(v)
	for i, vi := range v {
		if vi == 0 {
			continue
		}
		c := s * vi
		row := dst[i*d : (i+1)*d]
		for j, vj := range v {
			row[j] += c * vj
		}
	}
}

// Dot returns the inner product of x and y. Lengths must match.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Axpy sets y += a*x. Lengths must match.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// ScaleVec multiplies x by s in place.
func ScaleVec(s float64, x []float64) {
	for i := range x {
		x[i] *= s
	}
}
